"""Parametric race checking (paper §IV-B) plus out-of-bounds checking.

The barrier interval's conditional access sets are instantiated over two
symbolic threads ``t1 != t2`` and every write/other pair is checked for
address overlap with the SMT solver. Warp semantics:

* ``warp_size = 1`` — any unordered overlapping pair with a write races.
* ``warp_size = 32`` — threads of the same warp run in lock-step, so an
  intra-warp pair races only when (a) both sides write at the *same*
  instruction (simultaneous SIMD write), or (b) the two accesses sit in
  *divergent* branches of the warp (their guards are mutually exclusive
  for a single thread), whose execution order is unspecified (§II).

Write/write races additionally get a *benign* classification: if the two
writes provably store the same value whenever they collide, the paper's
tables mark them "W/W (Benign)".
"""
from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..smt.persist import (
    SolverArtifactStore, canonical_term, preamble_fingerprint,
)
from ..smt.subst import EvaluationError, evaluate

from .. import ir
from ..smt import (
    CheckResult, FALSE, Model, QueryMemo, Solver, SolverSession,
    SolverStats, Substitution, TRUE, Term, mk_and, mk_bv,
    mk_bv_var, mk_eq, mk_ne, mk_not, mk_or, mk_udiv, mk_ule, mk_ult,
    simplify,
)
from ..smt.affine import (
    AffineForm, affine_decompose, equality_forces_equal_components,
    stride_separated,
)
from ..smt.interval import Interval, IntervalAnalysis, byte_footprint
from ..smt.terms import Op, mk_add, mk_mul, mk_uge
from .access import Access, AccessKind, AccessSet
from .config import LaunchConfig, SymbolicEnv
from .executor import ExecutionResult
from .memory import MemoryObject, contains_havoc
from .swarm import ShardSelector

#: cache-miss sentinel (None is a legitimate cached value)
_MISS = object()


@dataclass
class RaceWitness:
    """Concrete thread/block coordinates exhibiting an issue."""

    thread1: Tuple[int, int, int]
    block1: Tuple[int, int, int]
    thread2: Optional[Tuple[int, int, int]] = None
    block2: Optional[Tuple[int, int, int]] = None
    inputs: Dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        def fmt(t, b):
            return f"block {b} thread {t}"
        out = fmt(self.thread1, self.block1)
        if self.thread2 is not None:
            out += f" vs {fmt(self.thread2, self.block2)}"
        if self.inputs:
            ins = ", ".join(f"{k}={v}" for k, v in sorted(self.inputs.items()))
            out += f" with {ins}"
        return out


@dataclass
class RaceReport:
    """One data race."""

    kind: str                  # "WW", "RW", "WR", "AW", ...
    obj_name: str
    access1: Access
    access2: Access
    benign: bool = False
    intra_warp: bool = False
    witness: Optional[RaceWitness] = None
    unresolvable: bool = False   # guards/addresses contain havocked values
    #: position of the pair in the canonical enumeration — lets a swarm
    #: merge reconstruct the sequential checker's report order exactly
    ordinal: Optional[int] = None

    def describe(self) -> str:
        flavour = " (benign)" if self.benign else ""
        warp = " [intra-warp]" if self.intra_warp else ""
        locs = f"lines {self.access1.loc}/{self.access2.loc}"
        out = (f"{self.kind} race{flavour}{warp} on {self.obj_name} "
               f"({locs})")
        if self.witness is not None:
            out += f": {self.witness}"
        return out


@dataclass
class OOBReport:
    """An out-of-bounds access."""

    obj_name: str
    access: Access
    size_bytes: int
    witness: Optional[RaceWitness] = None

    def describe(self) -> str:
        out = (f"out-of-bounds {self.access.kind.value} on {self.obj_name} "
               f"(size {self.size_bytes} B, line {self.access.loc})")
        if self.witness is not None:
            out += f": {self.witness}"
        return out


@dataclass
class AssertionReport:
    """A violated ``assert()``: some thread can reach it with the claim
    false."""

    loc: Optional[int]
    witness: Optional[RaceWitness] = None

    def describe(self) -> str:
        out = f"assertion violation at line {self.loc}"
        if self.witness is not None:
            out += f": {self.witness}"
        return out


@dataclass
class CheckStats:
    pairs_considered: int = 0
    queries: int = 0
    races_found: int = 0
    oob_found: int = 0
    by_affine: int = 0   # pairs discharged by the affine fast path
    by_memo: int = 0     # queries answered from the cross-query memo
    preamble_reuse: int = 0   # queries served by an existing session
    div_cache_hits: int = 0   # cached divergence (guard-pair) checks
    sessions_created: int = 0
    # -- pre-solver pruning pipeline ----------------------------------
    dedup_skipped: int = 0        # loop-invariant duplicates dropped
    summarized_accesses: int = 0  # records collapsed into summaries
    bucketed_out: int = 0         # pairs pruned by address disjointness
    pair_memo_hits: int = 0       # isomorphic pairs replayed, not solved
    oob_pruned: int = 0           # OOB queries skipped: provably in-bounds
    # -- cross-run warm start (repro.smt.persist) ----------------------
    warm_starts: int = 0          # sessions adopted from a disk artifact
    warm_memo_hits: int = 0       # queries replayed from a disk memo
    warm_pair_hits: int = 0       # pairs replayed from a disk artifact
    # -- tiered checking (repro.static) --------------------------------
    tier: str = "parametric"      # which tier produced this verdict
    static_resolved: int = 0      # 1 when the static tier owned it
    static_pairs_checked: int = 0
    static_pairs_discharged: int = 0
    #: why the static tier escalated (None: resolved / tier disabled)
    static_bail_reason: Optional[str] = None
    #: wall clock owned by the static tier: adjudication time when it
    #: resolved (the walk is already in execute_seconds), or the whole
    #: abandoned attempt when it escalated
    static_seconds: float = 0.0
    # -- per-phase wall clock (seconds) -------------------------------
    execute_seconds: float = 0.0
    pairgen_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: per-query solver dispatch counters, merged across all queries
    solver: SolverStats = field(default_factory=SolverStats)


class RaceChecker:
    """Checks one :class:`ExecutionResult` for races and OOB accesses."""

    def __init__(self, result: ExecutionResult,
                 solver_budget: Optional[int] = 200_000,
                 max_reports: int = 16,
                 extra_assumptions: Optional[List[Term]] = None,
                 incremental: Optional[bool] = None,
                 pruning: Optional[bool] = None,
                 sessions: Optional[Dict[Tuple[int, ...],
                                         SolverSession]] = None,
                 memo: Optional[QueryMemo] = None,
                 shard: Optional[ShardSelector] = None) -> None:
        self.result = result
        self.config = result.config
        self.env = result.env
        self.max_reports = max_reports
        self.solver_budget = solver_budget
        # swarm mode: restrict the pair walk to this shard's ordinal
        # ranges (None: the whole enumeration, the sequential default)
        self.shard = shard if shard is not None \
            else getattr(self.config, "shard", None)
        if isinstance(self.shard, dict):
            self.shard = ShardSelector.from_dict(self.shard)
        self.plan_mismatch = False
        self._current_ordinal: Optional[int] = None
        self.extra_assumptions: List[Term] = list(extra_assumptions or ())
        self.incremental = self.config.incremental_solving \
            if incremental is None else incremental
        self.pruning = self.config.pair_pruning \
            if pruning is None else pruning
        self.stats = CheckStats()
        self.stats.dedup_skipped = result.dedup_skipped
        self.stats.summarized_accesses = result.summarized_accesses
        self.stats.execute_seconds = result.elapsed_seconds
        self.timed_out = False
        self._deadline: Optional[float] = None
        self.races: List[RaceReport] = []
        self.oobs: List[OOBReport] = []
        self.assertion_failures: List[AssertionReport] = []
        # summary index variables are instantiated per thread side like
        # the thread coordinates (their k < count bounds live in the
        # access guards, so the preambles stay summary-free)
        self._summary_bounds: Dict[str, Interval] = {}
        self._summary_vars: Dict[str, Term] = {}
        for bi_set in result.bi_access_sets:
            for access in bi_set:
                if access.summary is not None:
                    k = access.summary.index_var
                    self._summary_vars[k.name] = k
                    self._summary_bounds[k.name] = Interval(
                        0, access.summary.count - 1, k.width)
        # two instantiations of the parametric thread
        self._theta1, self._vars1 = self._instantiation("!1")
        self._theta2, self._vars2 = self._instantiation("!2")
        # persistent substitution caches: shared subterm prefixes (flow
        # conditions of the enclosing interval) are instantiated once
        self._subst1 = Substitution(self._theta1[0])
        self._subst2 = Substitution(self._theta2[0])
        # incremental machinery: one session per distinct preamble
        # (keyed on interned term identities, built lazily because
        # extra_assumptions may be mutated after construction), the
        # cross-query memo, and the divergence-check cache
        # callers running the checker repeatedly over near-identical
        # programs (the CEGIS repair loop) pass shared containers here so
        # warm sessions / memoized verdicts carry across re-checks —
        # preambles are interned terms, so the keys are stable between
        # checker instances
        self._sessions = sessions if sessions is not None else {}
        self._memo = memo if memo is not None else QueryMemo()
        self._div_cache: Dict[int, bool] = {}
        # cross-run warm start: content-addressed solver artifacts under
        # the configured cache dir (None: no persistence, the default)
        cache_dir = getattr(self.config, "solver_cache_dir", None)
        self._store: Optional[SolverArtifactStore] = \
            SolverArtifactStore(cache_dir) if cache_dir else None
        self._pkey_fp: Dict[Tuple[int, ...], str] = {}
        self._warm_artifact: Dict[Tuple[int, ...], dict] = {}
        self._persist_memo: Dict[Tuple[int, ...],
                                 Dict[str, Tuple[str, Optional[dict]]]] = {}
        #: pair-level verdicts from the artifact: digest -> None (no
        #: race) | [witness values, benign] — plus anything this run adds
        self._persist_pairs: Dict[Tuple[int, ...],
                                  Dict[str, Optional[list]]] = {}
        #: preambles whose artifact gained something this run — a fully
        #: replayed session skips the (JSON-heavy) re-save entirely
        self._persist_dirty: Set[Tuple[int, ...]] = set()
        # pruning machinery: interval analysis over the *uninstantiated*
        # offsets (both thread sides share the same bounds), per-offset
        # footprint/affine caches, and the canonical pair memo
        self._ia = IntervalAnalysis(self._pruning_bounds())
        self._foot_cache: Dict[Tuple[int, int], Optional[tuple]] = {}
        self._affine_cache: Dict[int, Optional[AffineForm]] = {}
        self._pair_memo: Dict[tuple, Optional[tuple]] = {}
        self._race_pre_cache: Dict[tuple, List[Term]] = {}
        self._spine_cache: Dict[int, Tuple[Set[int], Set[int]]] = {}
        self._pkey_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------

    def _instantiation(self, suffix: str):
        """Substitution tid.*→t<suffix>, bid.*→b<suffix> plus bounds."""
        theta = {}
        bounds: List[Term] = []
        new_vars: Dict[str, Term] = {}
        for name, var in self.env.thread_vars().items():
            fresh = mk_bv_var(f"{name}{suffix}", 32)
            theta[var] = fresh
            new_vars[name] = fresh
            axis = name.split(".")[1]
            i = {"x": 0, "y": 1, "z": 2}[axis]
            extent = self.config.block_dim[i] if name.startswith("tid") \
                else self.config.grid_dim[i]
            bounds.append(mk_ult(fresh, mk_bv(extent, 32)))
        # summary index variables get per-side copies too (each thread
        # may be at a different unrolled iteration); their bounds are
        # carried by the access guards, not the preamble
        for name in sorted(self._summary_vars):
            var = self._summary_vars[name]
            fresh = mk_bv_var(f"{name}{suffix}", var.width)
            theta[var] = fresh
            new_vars[name] = fresh
        return (theta, bounds), new_vars

    def _pruning_bounds(self) -> Dict[str, Interval]:
        """Variable bounds for the pre-instantiation interval analysis."""
        bounds: Dict[str, Interval] = dict(self._summary_bounds)
        for name in self.env.thread_vars():
            axis = name.split(".")[1]
            i = {"x": 0, "y": 1, "z": 2}[axis]
            extent = self.config.block_dim[i] if name.startswith("tid") \
                else self.config.grid_dim[i]
            bounds[name] = Interval(0, max(0, extent - 1), 32)
        return bounds

    def _inst(self, term: Term, which: int) -> Term:
        subst = self._subst1 if which == 1 else self._subst2
        return subst(term)

    def _var(self, which: int, name: str) -> Term:
        vars_ = self._vars1 if which == 1 else self._vars2
        return vars_.get(name, mk_bv(0, 32))

    def _bounds(self) -> List[Term]:
        return self._theta1[1] + self._theta2[1] + \
            list(self.config.assumptions) + self.extra_assumptions

    # -- query preambles ---------------------------------------------------
    # Each returns the fixed conjunct prefix shared by a family of
    # queries; the incremental path blasts it once per distinct prefix.

    def _race_preamble(self, obj: MemoryObject) -> List[Term]:
        # cached per object: the list object's identity then keys the
        # per-preamble machinery (pkey, flattened-spine sets) for free.
        # extra_assumptions are fixed for the lifetime of one check()
        # walk (the repair loop builds a fresh checker per iteration).
        key = (id(obj), len(self.extra_assumptions))
        pre = self._race_pre_cache.get(key)
        if pre is None:
            pre = self._bounds() + [self._different_thread(obj)]
            self._race_pre_cache[key] = pre
        return pre

    def _single_preamble(self) -> List[Term]:
        """Preamble for one-thread queries (assertions, OOB)."""
        key = ("single", len(self.extra_assumptions))
        pre = self._race_pre_cache.get(key)
        if pre is None:
            pre = self._theta1[1] + list(self.config.assumptions) + \
                self.extra_assumptions
            self._race_pre_cache[key] = pre
        return pre

    def _div_preamble(self) -> List[Term]:
        """Preamble for divergence checks: thread-1 bounds only."""
        key = ("div",)
        pre = self._race_pre_cache.get(key)
        if pre is None:
            pre = list(self._theta1[1])
            self._race_pre_cache[key] = pre
        return pre

    # -- thread-identity predicates ----------------------------------------

    def _same_block(self) -> Term:
        conj = TRUE
        for name in self._vars1:
            if name.startswith("bid"):
                conj = mk_and(conj, mk_eq(self._var(1, name),
                                          self._var(2, name)))
        return conj

    def _same_thread_in_block(self) -> Term:
        conj = TRUE
        for name in self._vars1:
            if name.startswith("tid"):
                conj = mk_and(conj, mk_eq(self._var(1, name),
                                          self._var(2, name)))
        return conj

    def _flat_tid(self, which: int) -> Term:
        bx, by, _ = self.config.block_dim
        t = self._var(which, "tid.x")
        t = mk_add(t, mk_mul(self._var(which, "tid.y"), mk_bv(bx, 32)))
        t = mk_add(t, mk_mul(self._var(which, "tid.z"),
                             mk_bv(bx * by, 32)))
        return t

    def _same_warp(self) -> Term:
        ws = mk_bv(self.config.warp_size, 32)
        return mk_and(
            self._same_block(),
            mk_eq(mk_udiv(self._flat_tid(1), ws),
                  mk_udiv(self._flat_tid(2), ws)))

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def check(self) -> "RaceChecker":
        self.timed_out = False
        self._deadline = None
        if self.config.time_budget_seconds is not None:
            self._deadline = time.monotonic() + \
                self.config.time_budget_seconds
        self._check_races()
        t0 = time.perf_counter()
        # a shard runs the single-thread checks only when it is the
        # designated aux owner, so the swarm covers them exactly once
        run_aux = self.shard is None or self.shard.check_aux
        if self.config.check_oob and not self.timed_out and run_aux:
            self._check_oob()
        if run_aux:
            self._check_assertions()
        self.stats.solve_seconds += time.perf_counter() - t0
        self.save_solver_artifacts()
        return self

    def _check_assertions(self) -> None:
        seen = set()
        for reached, claim, loc in self.result.assertions:
            if self._out_of_time() or len(self.assertion_failures) >= \
                    self.max_reports:
                return
            key = (id(reached), id(claim))
            if key in seen:
                continue
            seen.add(key)
            model = self._solve(
                [self._inst(reached, 1), mk_not(self._inst(claim, 1))],
                self._single_preamble())
            if model is not None:
                self.assertion_failures.append(AssertionReport(
                    loc=loc, witness=self._witness(model,
                                                   two_threads=False)))

    def _out_of_time(self) -> bool:
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.timed_out = True
            return True
        return False

    def _check_races(self) -> None:
        # pair generation is lazy: early exit (reports full / time up)
        # stops generation itself, not just checking. The two phases'
        # wall clocks are attributed separately for the ablation bench.
        pairs = self._iter_candidate_pairs()
        while True:
            t0 = time.perf_counter()
            item = next(pairs, None)
            self.stats.pairgen_seconds += time.perf_counter() - t0
            if item is None:
                return
            if len(self.races) >= self.max_reports or self._out_of_time():
                return
            t0 = time.perf_counter()
            self._check_pair(*item)
            self.stats.solve_seconds += time.perf_counter() - t0

    def iter_grouped_pairs(self):
        """The canonical pair enumeration: deterministic, group-tagged.

        Yields ``(group_key, a1, a2, same_bi)`` where consecutive pairs
        sharing a *group_key* form one contiguous enumeration group —
        the natural split points for swarm partitioning. Same-interval
        groups are ``("bi", interval, object, bucket)``; cross-interval
        global groups are ``("x", interval1, interval2, object)``.

        Shared memory: same barrier interval only (barriers order across
        intervals). Global memory: same interval for same-block pairs,
        any interval pair for cross-block pairs. With pruning on,
        same-interval enumeration is bucket-local (accesses partitioned
        by provably disjoint address footprints) and residue-separated
        pairs are dropped; both prunes count into ``bucketed_out``.
        The order (and hence every pair's *ordinal*) depends only on
        the deterministic execution record and the pruning flag, so a
        shard re-derives the identical ordinals in its own process.
        """
        maps = [s.by_object() for s in self.result.bi_access_sets]
        for bi_idx, by_obj in enumerate(maps):
            for obj, accesses in by_obj.items():
                for bucket, a1, a2 in self._bucketed_pairs(accesses):
                    yield ("bi", bi_idx, obj.name, bucket), a1, a2, True
        # cross-interval global pairs (only meaningful across blocks)
        if self.config.num_blocks > 1:
            for i, by1 in enumerate(maps):
                for j in range(i + 1, len(maps)):
                    by2 = maps[j]
                    for obj in by1:
                        if obj.space != ir.MemSpace.GLOBAL or obj not in by2:
                            continue
                        for a1 in by1[obj]:
                            for a2 in by2[obj]:
                                if not (a1.kind.is_write()
                                        or a2.kind.is_write()):
                                    continue
                                if self.pruning and \
                                        self._provably_disjoint(a1, a2):
                                    self.stats.bucketed_out += 1
                                    continue
                                yield (("x", i, j, obj.name),
                                       a1, a2, False)

    def plan_groups(self) -> List[Tuple[tuple, int]]:
        """``(group_key, size)`` in enumeration order, without solving.

        This is the swarm planner's input: group sizes define the
        contiguous ordinal spans that :func:`plan_partitions` packs
        into shards. Pair generation only (no SAT queries), so
        planning costs milliseconds even on the slow kernels.
        """
        groups: List[List] = []
        for key, _a1, _a2, _same_bi in self.iter_grouped_pairs():
            if groups and groups[-1][0] == key:
                groups[-1][1] += 1
            else:
                groups.append([key, 1])
        return [(key, size) for key, size in groups]

    def _iter_candidate_pairs(self):
        """Lazily yield (a1, a2, same_bi) pairs worth solving, applying
        the shard's ordinal filter when one is set.

        Safety net: after a *complete* walk, a shard whose enumeration
        length disagrees with the planned ``total_pairs`` marks the
        verdict unknown (``plan_mismatch`` + ``timed_out``) — a
        diverged plan must never let the merge claim SAFE. An early
        exit skips the count check, but early exits already mean racy
        (reports full) or unknown (budget), never safe.
        """
        shard = self.shard
        enumerated = 0
        for _key, a1, a2, same_bi in self.iter_grouped_pairs():
            ordinal = enumerated
            enumerated += 1
            if shard is not None and not shard.contains(ordinal):
                continue
            self._current_ordinal = ordinal
            yield a1, a2, same_bi
        if shard is not None and enumerated != shard.total_pairs:
            self.plan_mismatch = True
            self.timed_out = True

    @staticmethod
    def _write_pairs(accesses: Sequence[Access]):
        for i, a1 in enumerate(accesses):
            for a2 in accesses[i:]:
                if not (a1.kind.is_write() or a2.kind.is_write()):
                    continue
                # atomic vs atomic on the same object never races
                if a1.kind == AccessKind.ATOMIC and \
                        a2.kind == AccessKind.ATOMIC:
                    continue
                # an access cannot race with itself for a single thread,
                # but CAN for two threads (same instruction, two tids) —
                # except both-read, filtered above
                yield a1, a2

    @staticmethod
    def _eligible_pair_count(accesses: Sequence[Access]) -> int:
        """How many pairs `_write_pairs` would yield, in O(1)."""
        n = len(accesses)
        n_r = sum(1 for a in accesses if a.kind == AccessKind.READ)
        n_a = sum(1 for a in accesses if a.kind == AccessKind.ATOMIC)
        return (n * (n + 1) - n_r * (n_r + 1) - n_a * (n_a + 1)) // 2

    def _bucketed_pairs(self, accesses: Sequence[Access]):
        """Same-interval ``(bucket_index, a1, a2)`` triples, restricted
        to disjointness buckets (bucket 0 when pruning is off)."""
        if not self.pruning or len(accesses) < 2:
            for a1, a2 in self._write_pairs(accesses):
                yield 0, a1, a2
            return
        buckets = self._footprint_buckets(accesses)
        if len(buckets) > 1:
            self.stats.bucketed_out += \
                self._eligible_pair_count(accesses) - \
                sum(self._eligible_pair_count(b) for b in buckets)
        for index, bucket in enumerate(buckets):
            for a1, a2 in self._write_pairs(bucket):
                if a1 is not a2 and self._stride_separated_pair(a1, a2):
                    self.stats.bucketed_out += 1
                    continue
                yield index, a1, a2

    def _footprint_buckets(self, accesses: Sequence[Access]
                           ) -> List[List[Access]]:
        """Partition accesses into maximal groups whose byte footprints
        are pairwise disjoint *across* groups (classic interval sweep).
        An access whose footprint is unknown overlaps everything."""
        mask = (1 << 32) - 1
        items = sorted(
            ((self._footprint(a) or (0, mask)), pos, a)
            for pos, a in enumerate(accesses))
        buckets: List[List[Tuple[int, Access]]] = []
        cur: List[Tuple[int, Access]] = []
        cur_hi = -1
        for (lo, hi), pos, access in items:
            if cur and lo > cur_hi:
                buckets.append(cur)
                cur = []
            cur.append((pos, access))
            cur_hi = max(cur_hi, hi)
        if cur:
            buckets.append(cur)
        # restore recording order inside each bucket so pair enumeration
        # (and hence report order) is independent of the partitioning
        return [[a for _, a in sorted(b)] for b in buckets]

    def _footprint(self, access: Access) -> Optional[Tuple[int, int]]:
        """Sound byte range [lo, hi] the access can touch, or None.

        Computed on the uninstantiated offset: both thread sides share
        the same variable bounds, so the range covers either side. The
        summary-variable bounds used here are guaranteed by the k<count
        conjunct every summary carries in its guard."""
        key = (id(access.offset), access.size)
        hit = self._foot_cache.get(key, _MISS)
        if hit is not _MISS:
            return hit
        foot = byte_footprint(self._ia.interval_of(access.offset),
                              access.size)
        self._foot_cache[key] = foot
        return foot

    def _affine_of(self, offset: Term) -> Optional[AffineForm]:
        form = self._affine_cache.get(id(offset), _MISS)
        if form is _MISS:
            form = affine_decompose(offset)
            self._affine_cache[id(offset)] = form
        return form

    def _stride_separated_pair(self, a1: Access, a2: Access) -> bool:
        """Residue separation: same-size accesses whose affine offsets
        differ by a non-multiple of the common coefficient gcd can never
        touch the same address (sound for independent thread sides)."""
        if a1.size != a2.size:
            return False
        d1 = self._affine_of(a1.offset)
        d2 = self._affine_of(a2.offset)
        if d1 is None or d2 is None:
            return False
        return stride_separated(d1, d2, 32)

    def _provably_disjoint(self, a1: Access, a2: Access) -> bool:
        """Pairwise disjointness for cross-interval pairs."""
        f1 = self._footprint(a1)
        f2 = self._footprint(a2)
        if f1 is not None and f2 is not None and \
                (f1[1] < f2[0] or f2[1] < f1[0]):
            return True
        return self._stride_separated_pair(a1, a2)

    # ------------------------------------------------------------------

    def _overlap(self, a1: Access, a2: Access) -> Term:
        addr1 = self._inst(a1.offset, 1)
        addr2 = self._inst(a2.offset, 2)
        if a1.size == a2.size:
            return mk_eq(addr1, addr2)
        # byte ranges [addr, addr+size) intersect
        s1 = mk_bv(a1.size, 32)
        s2 = mk_bv(a2.size, 32)
        return mk_and(
            mk_ult(addr1, mk_add(addr2, s2)),
            mk_ult(addr2, mk_add(addr1, s1)))

    def _different_thread(self, obj: MemoryObject) -> Term:
        if obj.space == ir.MemSpace.SHARED:
            # shared memory is per block: the two parametric threads live
            # in the same block and must differ in tid
            return mk_and(self._same_block(),
                          mk_not(self._same_thread_in_block()))
        return mk_not(mk_and(self._same_block(),
                             self._same_thread_in_block()))

    def _affine_no_overlap(self, a1: Access, a2: Access,
                           obj: MemoryObject) -> bool:
        """Fast path: equal-size accesses whose addresses are the *same*
        injective affine map of the thread coordinates can never collide
        for distinct threads — UNSAT without the SAT core. Conditions
        are irrelevant: they only strengthen the conjunction."""
        if a1.size != a2.size:
            return False
        addr1 = affine_decompose(simplify(self._inst(a1.offset, 1)))
        addr2 = affine_decompose(simplify(self._inst(a2.offset, 2)))
        if addr1 is None or addr2 is None:
            return False
        pairing = {}
        var_bounds = {}
        distinct_components = []
        for name in self._vars1:
            v1 = self._vars1[name].name
            v2 = self._vars2[name].name
            pairing[v1] = v2
            summary_bound = self._summary_bounds.get(name)
            if summary_bound is not None:
                # summary index variable: bounded by the k<count guard
                # conjunct, which is part of the query conjunction
                var_bounds[v1] = summary_bound
                var_bounds[v2] = summary_bound
                continue
            axis = name.split(".")[1]
            i = {"x": 0, "y": 1, "z": 2}[axis]
            extent = self.config.block_dim[i] if name.startswith("tid")                 else self.config.grid_dim[i]
            var_bounds[v1] = Interval(0, extent - 1, 32)
            var_bounds[v2] = Interval(0, extent - 1, 32)
            if name.startswith("tid") or obj.space != ir.MemSpace.SHARED:
                distinct_components.append(v1)
        # every coordinate that could distinguish the two threads must be
        # forced equal by the address equality
        if not set(distinct_components) <= set(addr1[0]):
            return False
        return equality_forces_equal_components(
            addr1, addr2, var_bounds, pairing, width=32)

    def _pair_key(self, a1: Access, a2: Access, same_bi: bool) -> tuple:
        """Canonical class of a pair: two pairs with the same key pose
        the *identical* solver problem (offsets, guards and values are
        interned terms; the preamble depends only on the memory space;
        warp-aware solving additionally depends on whether both sides
        are the same instruction). The key is ordered — replaying a
        model onto a swapped pair is unsound under asymmetric
        assumptions (GKLEE's thread pins), so no swap lookup."""
        def cls(a: Access) -> tuple:
            return (a.kind, id(a.offset), id(a.cond), a.size, id(a.value))
        return (cls(a1), cls(a2), same_bi, a1.obj.space,
                a1.instr_id == a2.instr_id)

    def _check_pair(self, a1: Access, a2: Access, same_bi: bool) -> None:
        self.stats.pairs_considered += 1
        obj = a1.obj
        memo_key = None
        if self.pruning:
            memo_key = self._pair_key(a1, a2, same_bi)
            hit = self._pair_memo.get(memo_key, _MISS)
            if hit is not _MISS:
                self.stats.pair_memo_hits += 1
                if hit is not None:
                    values, benign = hit
                    self._emit_race(a1, a2, Model(dict(values)), benign)
                return

        # cross-run pair replay: a previous run recorded this exact
        # pair's verdict (canonical digests of every input) under the
        # same preamble — short-circuits ahead of even the affine path
        preamble = self._race_preamble(obj)
        ppairs = pdigest = None
        if self._store is not None and self.pruning:
            pkey = self._pkey_of(preamble)
            self._ensure_warm(preamble, pkey)
            ppairs = self._persist_pairs.setdefault(pkey, {})
            pdigest = self._pair_digest(a1, a2, same_bi)
            if self._replay_pair(a1, a2, same_bi, preamble,
                                 memo_key, ppairs.get(pdigest, _MISS)):
                return

        if self._affine_no_overlap(a1, a2, obj):
            self.stats.by_affine += 1
            if memo_key is not None:
                self._pair_memo[memo_key] = None
            self._record_pair(preamble, ppairs, pdigest, None)
            return
        was_timed_out = self.timed_out
        goal = [
            self._inst(a1.cond, 1),
            self._inst(a2.cond, 2),
            self._overlap(a1, a2),
        ]
        if not same_bi:
            # cross-interval global pair: only unordered across blocks
            goal.append(mk_not(self._same_block()))
        if self._conj_trivially_false(preamble, goal):
            if memo_key is not None:
                self._pair_memo[memo_key] = None
            self._record_pair(preamble, ppairs, pdigest, None)
            return
        if self.config.warp_lockstep and self.config.warp_size > 1:
            model = self._solve_warp_aware(a1, a2, preamble, goal)
        else:
            model = self._solve(goal, preamble)
        if model is None:
            # a verdict cut short by the budget must not be replayed
            if memo_key is not None and self.timed_out == was_timed_out:
                self._pair_memo[memo_key] = None
                self._record_pair(preamble, ppairs, pdigest, None)
            return
        benign = self._classify_benign(a1, a2, preamble, goal)
        if memo_key is not None and self.timed_out == was_timed_out:
            self._pair_memo[memo_key] = (dict(model.values), benign)
            self._record_pair(preamble, ppairs, pdigest,
                              [dict(model.values), benign])
        self._emit_race(a1, a2, model, benign)

    def _pair_digest(self, a1: Access, a2: Access, same_bi: bool) -> str:
        """Cross-run-stable identity of a pair's solver problem: the
        ordered :meth:`_pair_key` with term identities replaced by
        canonical digests, plus the warp policy (it changes which
        conjunctions get solved)."""
        def cls(a: Access) -> str:
            return "%s;%s;%s;%d;%s" % (
                a.kind.value, canonical_term(a.offset),
                canonical_term(a.cond), a.size,
                canonical_term(a.value) if a.value is not None else "-")
        material = "|".join((
            cls(a1), cls(a2), str(int(same_bi)), str(a1.obj.space),
            str(int(a1.instr_id == a2.instr_id)),
            str(int(self.config.warp_lockstep)),
            str(self.config.warp_size)))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _replay_pair(self, a1: Access, a2: Access, same_bi: bool,
                     preamble: List[Term], memo_key, hit) -> bool:
        """Replay a persisted pair verdict; True when handled."""
        if hit is _MISS:
            return False
        if hit is None:
            self.stats.warm_pair_hits += 1
            if memo_key is not None:
                self._pair_memo[memo_key] = None
            return True
        values, benign = dict(hit[0]), bool(hit[1])
        # racy replay: re-derive the goal and check the stored witness
        # actually exhibits it — a bogus artifact costs this validation,
        # never a spurious race
        goal = [
            self._inst(a1.cond, 1),
            self._inst(a2.cond, 2),
            self._overlap(a1, a2),
        ]
        if not same_bi:
            goal.append(mk_not(self._same_block()))
        if not self._witness_holds(preamble, goal, values):
            return False
        self.stats.warm_pair_hits += 1
        if memo_key is not None:
            self._pair_memo[memo_key] = (dict(values), benign)
        self._emit_race(a1, a2, Model(values), benign)
        return True

    def _record_pair(self, preamble: List[Term], ppairs, pdigest,
                     payload) -> None:
        if pdigest is None:   # persistence off for this pair
            return
        if pdigest not in ppairs or ppairs[pdigest] != payload:
            ppairs[pdigest] = payload
            self._persist_dirty.add(self._pkey_of(preamble))

    @staticmethod
    def _flatten_spine(terms: Sequence[Term]
                       ) -> Tuple[Set[int], Set[int], bool]:
        """``(conjunct ids, negated-child ids, any FALSE)`` after
        flattening nested conjunctions — the facts ``mk_and`` uses to
        constant-fold a conjunction to FALSE."""
        ids: Set[int] = set()
        neg: Set[int] = set()
        has_false = False
        stack = list(terms)
        while stack:
            t = stack.pop()
            if t.op == Op.BAND:
                stack.extend(t.args)
                continue
            if t.is_false():
                has_false = True
            ids.add(id(t))
            if t.op == Op.BNOT:
                neg.add(id(t.args[0]))
        return ids, neg, has_false

    def _conj_trivially_false(self, preamble: List[Term],
                              goal: Sequence[Term]) -> bool:
        """``mk_and(*preamble, *goal) is FALSE``, without building the
        conjunction. The preamble's flattened spine is cached on the
        (pinned, per-object) preamble list; only the small goal is
        walked per pair."""
        spine = self._spine_cache.get(id(preamble))
        if spine is None:
            pids, pneg, pfalse = self._flatten_spine(preamble)
            spine = (pids, pneg, pfalse or bool(pneg & pids))
            self._spine_cache[id(preamble)] = spine
        pids, pneg, pfalse = spine
        if pfalse:
            return True
        gids, gneg, gfalse = self._flatten_spine(goal)
        if gfalse:
            return True
        return bool((pneg & gids) or (gneg & gids) or (gneg & pids))

    def _solve(self, goal: Sequence[Term],
               preamble: Sequence[Term]) -> Optional[Model]:
        """SAT model of ``preamble AND goal``, or None (UNSAT/unknown).

        Incremental mode canonicalises the goal, consults the memo,
        then checks it as assumptions against the session holding the
        blasted preamble. The one-shot path solves the full conjunction
        from scratch (``incremental_solving=False``).
        """
        self.stats.queries += 1
        if not self.incremental:
            solver = Solver(conflict_budget=self.solver_budget,
                            deadline=self._deadline)
            solver.add(mk_and(*preamble, *goal))
            outcome = solver.check()
            self.stats.solver.merge(solver.stats)
            if outcome == CheckResult.SAT:
                return solver.model()
            if outcome == CheckResult.UNKNOWN:
                # the solver budget (conflicts or deadline) ran out
                # mid-query: the verdict for this pair is unknown, so the
                # overall answer must carry the same T.O. marker as a
                # wall-clock timeout
                self.timed_out = True
            return None

        canon = simplify(mk_and(*goal)) if goal else TRUE
        pkey = self._pkey_of(preamble)
        key = (pkey, id(canon))
        hit = self._memo.get(key)
        if hit is not None:
            self.stats.by_memo += 1
            result, values = hit
            return Model(dict(values)) if result == CheckResult.SAT else None

        session = self._session_for(preamble, pkey)
        replay = self._replay_persisted(preamble, goal, pkey, canon, key)
        if replay is not _MISS:
            return replay
        before = session.stats.copy()
        outcome = session.check([canon] if canon is not TRUE else [])
        self.stats.solver.merge(session.stats.delta_since(before))
        if outcome == CheckResult.SAT:
            model = session.model()
            self._memo.put(key, outcome, dict(model.values))
            self._record_persisted(pkey, canon, outcome,
                                   dict(model.values))
            return model
        if outcome == CheckResult.UNKNOWN:
            self.timed_out = True
            return None
        self._memo.put(key, outcome)
        self._record_persisted(pkey, canon, outcome, None)
        return None

    # -- cross-run persisted memo --------------------------------------

    def _replay_persisted(self, preamble: Sequence[Term],
                          goal: Sequence[Term], pkey: Tuple[int, ...],
                          canon: Term, key: tuple):
        """A verdict recorded by a previous run for this exact
        (preamble, goal), or ``_MISS``.

        SAT replays are re-validated by evaluating the query under the
        stored witness — a bogus artifact can cost a validation, never
        a wrong SAT verdict. UNSAT replays rest on the fingerprint: the
        artifact was recorded under a structurally identical preamble
        by the same tool version.
        """
        pm = self._persist_memo.get(pkey)
        if not pm:
            return _MISS
        entry = pm.get(canonical_term(canon))
        if entry is None:
            return _MISS
        verdict, values = entry
        if verdict == CheckResult.SAT:
            values = dict(values or {})
            if not self._witness_holds(preamble, goal, values):
                return _MISS
            self.stats.warm_memo_hits += 1
            self._memo.put(key, verdict, values)
            return Model(values)
        self.stats.warm_memo_hits += 1
        self._memo.put(key, verdict)
        return None

    @staticmethod
    def _witness_holds(preamble: Sequence[Term], goal: Sequence[Term],
                       values: Dict[str, int]) -> bool:
        from ..smt import free_vars
        for t in list(preamble) + list(goal):
            assignment = dict(values)
            for name in free_vars(t):
                assignment.setdefault(name, 0)
            try:
                if not evaluate(t, assignment):
                    return False
            except EvaluationError:
                return False
        return True

    def _record_persisted(self, pkey: Tuple[int, ...], canon: Term,
                          verdict: str,
                          values: Optional[Dict[str, int]]) -> None:
        if self._store is None:
            return
        pm = self._persist_memo.setdefault(pkey, {})
        pm[canonical_term(canon)] = (verdict, values)
        self._persist_dirty.add(pkey)

    def save_solver_artifacts(self) -> int:
        """Persist every session's snapshot + memo (end of ``check``).

        Returns the number of artifacts written. A session that never
        reached the SAT layer exports nothing and is skipped.
        """
        if self._store is None:
            return 0
        written = 0
        for pkey in sorted(self._persist_dirty):
            fp = self._pkey_fp.get(pkey)
            if fp is None:
                continue
            session = self._sessions.get(pkey)
            state = session.export_state() if session is not None else None
            if state is None:
                # no session reached the SAT layer this run (everything
                # replayed or affine-discharged): refresh the loaded
                # artifact in place; with nothing loaded either there is
                # no snapshot to anchor the artifact — skip
                state = self._warm_artifact.get(pkey)
                if state is None:
                    continue
            memo = [(canon, verdict, values)
                    for canon, (verdict, values)
                    in self._persist_memo.get(pkey, {}).items()]
            self._store.save(fp, state, memo,
                             self._persist_pairs.get(pkey, {}))
            written += 1
        return written

    def _pkey_of(self, preamble: Sequence[Term]) -> Tuple[int, ...]:
        # preamble lists are pinned in _race_pre_cache, so their id is a
        # stable key for the (tuple-of-term-ids) session key
        pkey = self._pkey_cache.get(id(preamble))
        if pkey is None:
            pkey = tuple(id(t) for t in preamble)
            self._pkey_cache[id(preamble)] = pkey
        return pkey

    def _session_for(self, preamble: Sequence[Term],
                     pkey: Tuple[int, ...]) -> SolverSession:
        session = self._sessions.get(pkey)
        if session is None:
            # the session owns its stats: sessions outlive this checker
            # (the repair loop shares them across re-checks), so binding
            # them to one checker's counters would double-count — each
            # query's delta is merged in _solve instead
            session = SolverSession(
                preamble, conflict_budget=self.solver_budget,
                deadline=self._deadline)
            self._sessions[pkey] = session
            self.stats.sessions_created += 1
            if self._store is not None:
                self._ensure_warm(preamble, pkey)
                artifact = self._warm_artifact.get(pkey)
                if artifact is not None and session.adopt_state(artifact):
                    self.stats.warm_starts += 1
        else:
            self.stats.preamble_reuse += 1
            session.deadline = self._deadline
        return session

    def _ensure_warm(self, preamble: Sequence[Term],
                     pkey: Tuple[int, ...]) -> None:
        """Load the persisted artifact for this preamble (once per
        checker): fingerprint, disk read, validation. Any failure —
        missing file, corruption, version skew — cold-starts, with a
        warning on the execution record for the non-miss cases."""
        if self._store is None or pkey in self._pkey_fp:
            return
        fp = preamble_fingerprint(preamble)
        self._pkey_fp[pkey] = fp
        artifact, warning = self._store.load(fp)
        if warning is not None:
            warnings = self.result.warnings
            if warning not in warnings:
                warnings.append(warning)
            return
        if artifact is None:
            return
        self._warm_artifact[pkey] = artifact
        self._persist_memo[pkey] = {
            canon: (verdict, values)
            for canon, verdict, values in artifact["memo"]}
        self._persist_pairs[pkey] = dict(artifact.get("pairs") or {})

    def _solve_warp_aware(self, a1: Access, a2: Access,
                          preamble: List[Term],
                          goal: List[Term]) -> Optional[Model]:
        # inter-warp pairs always qualify
        model = self._solve(goal + [mk_not(self._same_warp())], preamble)
        if model is not None:
            return model
        # intra-warp: same-instruction simultaneous writes ...
        if a1.instr_id == a2.instr_id and a1.kind.is_write() \
                and a2.kind.is_write():
            return self._solve(goal + [self._same_warp()], preamble)
        # ... or accesses in divergent branches (unordered execution):
        # guards mutually exclusive for one thread
        both = mk_and(a1.cond, a2.cond)
        if both is FALSE or not self._both_reachable(both):
            return self._solve(goal + [self._same_warp()], preamble)
        return None

    def _both_reachable(self, both: Term) -> bool:
        """Can a single thread satisfy both guards? Cached on the
        interned conjunction — the same guard pair repeats across
        overlapping access pairs."""
        key = id(both)
        cached = self._div_cache.get(key)
        if cached is not None:
            self.stats.div_cache_hits += 1
            return cached
        reachable = self._solve([self._inst(both, 1)],
                                self._div_preamble()) is not None
        self._div_cache[key] = reachable
        return reachable

    def _classify_benign(self, a1: Access, a2: Access,
                         preamble: List[Term], goal: List[Term]) -> bool:
        """W/W race where the colliding writes provably store the same
        value (paper's "W/W (Benign)")."""
        if not (a1.kind.is_write() and a2.kind.is_write()
                and a1.value is not None and a2.value is not None):
            return False
        if contains_havoc(a1.value) or contains_havoc(a2.value):
            return False
        distinct = mk_ne(self._inst(a1.value, 1),
                         self._inst(a2.value, 2))
        return self._solve(goal + [distinct], preamble) is None

    def _emit_race(self, a1: Access, a2: Access, model: Model,
                   benign: bool) -> None:
        # canonical kind: WW for write/write, RW for mixed; atomics noted
        if a1.kind.is_write() and a2.kind.is_write():
            kind = "WW"
        else:
            kind = "RW"
        if AccessKind.ATOMIC in (a1.kind, a2.kind):
            kind = f"Atomic/{kind[0]}" if kind == "WW" else "Atomic/R"
        unresolvable = any(contains_havoc(t) for t in
                           (a1.cond, a2.cond, a1.offset, a2.offset))
        report = RaceReport(
            kind=kind, obj_name=a1.obj.name, access1=a1, access2=a2,
            benign=benign, witness=self._witness(model, two_threads=True),
            unresolvable=unresolvable, ordinal=self._current_ordinal)
        self.races.append(report)
        self.stats.races_found += 1

    # ------------------------------------------------------------------

    def _check_oob(self) -> None:
        seen: Set[tuple] = set()
        reported: Set[tuple] = set()
        for access in self.result.all_accesses():
            if len(self.oobs) >= self.max_reports or self._out_of_time():
                return
            obj = access.obj
            if obj.size_bytes is None:
                continue
            # one report per (object, source line): distinct loop
            # iterations of the same access are the same bug
            if (obj.name, access.loc) in reported:
                continue
            key = (id(obj), id(access.offset), access.size, id(access.cond))
            if key in seen:
                continue
            seen.add(key)
            # interval fast path: when the whole footprint provably fits
            # inside the object (thread bounds from the preamble, summary
            # bounds from the guard), the query has no model — skip it
            if self.pruning and obj.size_bytes >= access.size:
                iv = self._ia.interval_of(access.offset)
                if iv.hi <= obj.size_bytes - access.size:
                    self.stats.oob_pruned += 1
                    continue
            addr = self._inst(access.offset, 1)
            limit = mk_bv(obj.size_bytes - access.size, 32) \
                if obj.size_bytes >= access.size else mk_bv(0, 32)
            past_end = mk_not(mk_ule(addr, limit))
            model = self._solve([self._inst(access.cond, 1), past_end],
                                self._single_preamble())
            if model is not None:
                reported.add((obj.name, access.loc))
                self.oobs.append(OOBReport(
                    obj_name=obj.name, access=access,
                    size_bytes=obj.size_bytes,
                    witness=self._witness(model, two_threads=False)))
                self.stats.oob_found += 1

    # ------------------------------------------------------------------

    def _witness(self, model: Model, two_threads: bool) -> RaceWitness:
        def coords(which: int, prefix: str) -> Tuple[int, int, int]:
            out = []
            for axis in ("x", "y", "z"):
                name = f"{prefix}.{axis}"
                var = (self._vars1 if which == 1 else self._vars2).get(name)
                out.append(model.get(var.name, 0) if var is not None else 0)
            return tuple(out)  # type: ignore[return-value]

        inputs = {k: v for k, v in model.values.items()
                  if not any(k.startswith(p)
                             for p in ("tid.", "bid.")) and "!" not in k}
        witness = RaceWitness(
            thread1=coords(1, "tid"), block1=coords(1, "bid"),
            inputs=inputs)
        if two_threads:
            witness.thread2 = coords(2, "tid")
            witness.block2 = coords(2, "bid")
        return witness
