"""Per-flow execution state.

A *flow* is an equivalence class of threads sharing a flow condition over
``tid``/``bid`` (paper §IV-B). One parametric thread executes per flow;
its state is this class. Splits clone the state (copy-on-write for the
memory logs).
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import ir
from ..smt import TRUE, Term, mk_and
from .access import Access, AccessSet
from .memory import LocalMemory, MemoryObject, ObjectLog

_flow_counter = itertools.count()


class FlowState:
    """Registers + memory + conditions for one parametric flow."""

    def __init__(self, flow_cond: Term = TRUE,
                 parent: Optional["FlowState"] = None) -> None:
        self.flow_id: int = next(_flow_counter)
        self.parent_id: Optional[int] = None if parent is None \
            else parent.flow_id
        self.flow_cond: Term = flow_cond
        #: SSA register values (id(Register) → SymValue)
        self.regs: Dict[int, object] = {} if parent is None \
            else dict(parent.regs)
        self.local = LocalMemory() if parent is None \
            else parent.local.clone()
        #: shared/global write logs, per object
        self.logs: Dict[int, ObjectLog] = {} if parent is None else {
            k: v.clone() for k, v in parent.logs.items()}
        #: accesses of the current barrier interval
        self.bi_accesses = AccessSet()
        if parent is not None:
            self.bi_accesses.extend(parent.bi_accesses)
        self.bi_index: int = 0 if parent is None else parent.bi_index
        #: number of loop-branch splits this lineage has performed
        self.split_depth: int = 0 if parent is None else parent.split_depth
        #: executor position (filled by the scheduler)
        self.block: Optional[ir.BasicBlock] = None
        self.came_from: Optional[ir.BasicBlock] = None
        self.finished: bool = False
        self.at_barrier: bool = False
        #: diagnostics
        self.warnings: List[str] = [] if parent is None \
            else list(parent.warnings)

    # ------------------------------------------------------------------

    def split(self, cond_true: Term, cond_false: Term
              ) -> tuple["FlowState", "FlowState"]:
        """Fork into two flows refining the flow condition (paper Fig. 4)."""
        left = FlowState(mk_and(self.flow_cond, cond_true), parent=self)
        right = FlowState(mk_and(self.flow_cond, cond_false), parent=self)
        # move (don't copy) the dedup counter to one child so the skips
        # this lineage accumulated are counted exactly once at the
        # barrier union
        left.bi_accesses.dedup_skipped = self.bi_accesses.dedup_skipped
        self.bi_accesses.dedup_skipped = 0
        left.split_depth = self.split_depth + 1
        right.split_depth = self.split_depth + 1
        left.block = right.block = self.block
        left.came_from = right.came_from = self.came_from
        return left, right

    def log_for(self, obj: MemoryObject) -> ObjectLog:
        log = self.logs.get(id(obj))
        if log is None:
            log = ObjectLog(obj)
            self.logs[id(obj)] = log
        return log

    def set_reg(self, reg: ir.Register, value: object) -> None:
        self.regs[id(reg)] = value

    def get_reg(self, reg: ir.Register) -> object:
        try:
            return self.regs[id(reg)]
        except KeyError:
            raise KeyError(f"register %{reg.name} is undefined "
                           f"(flow {self.flow_id})") from None

    def record(self, access: Access) -> None:
        self.bi_accesses.add(access)

    def warn(self, message: str) -> None:
        if message not in self.warnings:
            self.warnings.append(message)

    def __repr__(self) -> str:
        return (f"<flow {self.flow_id} cond={self.flow_cond!r} "
                f"BI={self.bi_index}>")
