"""The parametric symbolic executor (paper §IV).

One parametric thread executes per flow under a canonical sequential
schedule. The engine runs in two modes:

* ``"sesa"`` — divergent *diamonds* (branches whose arms reconverge at the
  immediate post-dominator without barriers, returns, or loops) are
  executed under access guards and merged with ``ite`` values — the
  paper's flow combining. Only genuinely structural divergence (symbolic
  loop-exit branches, barriers inside branches) splits flows.
* ``"gkleep"`` — every symbolic branch splits the flow, reproducing the
  GKLEEp comparator's exponential flow growth (Table II).

Flow splits refine the flow condition (Fig. 4); infeasible refinements
(e.g. ``tid%2 != 0 ∧ tid%4 == 0``'s complement) are pruned with the
solver, exactly as the paper describes for flow F4.
"""
from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import ir
from ..smt import (
    BOOL, FALSE, TRUE, CheckResult, Solver, Term, mk_and, mk_ashr, mk_bool,
    mk_bv, mk_bv_var, mk_bvand, mk_bvnot, mk_bvor, mk_bvxor, mk_bxor,
    mk_eq, mk_extract, mk_ite, mk_lshr, mk_ne, mk_not, mk_or, mk_sdiv,
    mk_sext, mk_shl, mk_sle, mk_slt, mk_srem, mk_sub, mk_udiv, mk_ule,
    mk_ult, mk_urem, mk_zext,
)
from ..smt.terms import (
    mk_add, mk_mul, mk_sge, mk_sgt, mk_uge, mk_ugt, mk_uf,
)
from .access import Access, AccessKind, AccessSet, summarize_access_set
from .config import LaunchConfig, SymbolicEnv
from .memory import MemoryObject, ObjectLog, WriteRecord, make_havoc
from .state import FlowState
from .value import Pointer, SymValue, fit_width, width_of


class ExecutionError(Exception):
    """Raised on a malformed kernel or an unsupported construct."""


class BudgetExhausted(Exception):
    """The step/flow budget ran out (reported as a timeout, cf. 'T.O.')."""


@dataclass
class ExecutionResult:
    """Everything race checking and reporting need from one run."""

    kernel: str
    mode: str
    config: LaunchConfig
    env: SymbolicEnv
    #: unioned access set per barrier interval
    bi_access_sets: List[AccessSet] = field(default_factory=list)
    objects: List[MemoryObject] = field(default_factory=list)
    max_flows: int = 1
    num_splits: int = 0
    num_barriers: int = 0
    steps: int = 0
    timed_out: bool = False
    elapsed_seconds: float = 0.0
    #: loop-invariant duplicate records dropped at AccessSet.add time
    dedup_skipped: int = 0
    #: raw records collapsed away by affine-run summarization
    summarized_accesses: int = 0
    warnings: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    final_flow_conds: List[Term] = field(default_factory=list)
    #: split events for the Fig. 4 flow tree: (parent, child, refinement)
    flow_events: List[tuple] = field(default_factory=list)
    #: assert() sites: (condition under flow+guard, negated-claim, loc)
    assertions: List[tuple] = field(default_factory=list)

    def all_accesses(self) -> List[Access]:
        return [a for s in self.bi_access_sets for a in s]


_INT_BINOP = {
    "add": mk_add, "sub": mk_sub, "mul": mk_mul,
    "udiv": mk_udiv, "sdiv": mk_sdiv, "urem": mk_urem, "srem": mk_srem,
    "and": mk_bvand, "or": mk_bvor, "xor": mk_bvxor,
    "shl": mk_shl, "lshr": mk_lshr, "ashr": mk_ashr,
}

_ICMP = {
    "eq": mk_eq, "ne": mk_ne,
    "ult": mk_ult, "ule": mk_ule, "ugt": mk_ugt, "uge": mk_uge,
    "slt": mk_slt, "sle": mk_sle, "sgt": mk_sgt, "sge": mk_sge,
}

_BOOL_BINOP = {"and": mk_and, "or": mk_or, "xor": mk_bxor}


class Executor:
    """Runs one kernel parametrically and collects access sets."""

    def __init__(self, module: ir.Module, kernel: ir.Function,
                 config: LaunchConfig, mode: str = "sesa",
                 sink_value_ids: Optional[Set[int]] = None) -> None:
        if mode not in ("sesa", "gkleep"):
            raise ValueError(f"unknown mode {mode}")
        self.module = module
        self.kernel = kernel
        self.config = config
        self.mode = mode
        self.sink_value_ids = sink_value_ids
        self.env = SymbolicEnv(config)

        self.cfg = ir.CFG(kernel)
        self.ipostdom = self.cfg.ipostdom()
        self.mergeable = self._classify_branches()

        self.objects: Dict[int, MemoryObject] = {}
        self.arg_values: Dict[int, SymValue] = {}
        self._local_objs: Dict[int, MemoryObject] = {}
        self._setup_objects()

        self.steps = 0
        self.num_splits = 0
        self._feas_solver = Solver(conflict_budget=3_000)
        self._feas_cache: Dict[int, bool] = {}
        self.result = ExecutionResult(
            kernel=kernel.name, mode=mode, config=config, env=self.env,
            objects=list(self.objects.values()))

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _symbolic_param_names(self) -> Set[str]:
        if self.config.symbolic_inputs is not None:
            return set(self.config.symbolic_inputs)
        return set()  # caller (SESA driver) passes the taint result

    def _setup_objects(self) -> None:
        symbolic = self._symbolic_param_names()
        for gv in self.module.globals.values():
            elem = gv.storage_type
            while isinstance(elem, ir.ArrayType):
                elem = elem.elem
            obj = MemoryObject(
                name=gv.name, space=gv.space, size_bytes=gv.size_bytes,
                elem_width=width_of(elem))
            self.objects[id(gv)] = obj
        for arg in self.kernel.args:
            if isinstance(arg.type, ir.PointerType):
                elem_width = width_of(arg.type.pointee)
                count = self.config.array_sizes.get(
                    arg.name, self.config.default_array_size())
                obj = MemoryObject(
                    name=arg.name, space=ir.MemSpace.GLOBAL,
                    size_bytes=count * max(1, elem_width // 8),
                    elem_width=elem_width,
                    is_symbolic_input=arg.name in symbolic,
                    concrete_values=self.config.array_values.get(arg.name))
                self.objects[id(arg)] = obj
                self.arg_values[id(arg)] = Pointer(obj, mk_bv(0, 32))
            else:
                width = width_of(arg.type)
                if arg.name in symbolic:
                    self.arg_values[id(arg)] = mk_bv_var(arg.name, width)
                else:
                    self.arg_values[id(arg)] = mk_bv(
                        self.config.default_scalar(arg.name), width)

    def _classify_branches(self) -> Dict[int, bool]:
        """br id → True when its diamond can be merged (no barrier/ret/loop
        between the branch and its immediate post-dominator)."""
        out: Dict[int, bool] = {}
        back_edges = {(id(t), id(h)) for t, h in self.cfg.back_edges()}
        for block in self.kernel.blocks:
            term = block.terminator
            if not isinstance(term, ir.Br):
                continue
            ipdom = self.ipostdom.get(block)
            if ipdom is None:
                out[id(term)] = False
                continue
            region = self._region_blocks(block, ipdom)
            ok = True
            for rb in region:
                for instr in rb.instrs:
                    if isinstance(instr, (ir.Sync, ir.Ret)):
                        ok = False
                for succ in rb.successors():
                    if (id(rb), id(succ)) in back_edges:
                        ok = False
            # a back edge from the branch block itself (do-while)
            for succ in block.successors():
                if (id(block), id(succ)) in back_edges:
                    ok = False
            out[id(term)] = ok
        return out

    def _region_blocks(self, block: ir.BasicBlock,
                       ipdom: ir.BasicBlock) -> List[ir.BasicBlock]:
        seen: Set[int] = {id(ipdom)}
        out: List[ir.BasicBlock] = []
        stack = list(block.successors())
        while stack:
            b = stack.pop()
            if id(b) in seen:
                continue
            seen.add(id(b))
            out.append(b)
            stack.extend(b.successors())
        return out

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> ExecutionResult:
        started = time.perf_counter()
        self._deadline = None
        if self.config.time_budget_seconds is not None:
            self._deadline = time.monotonic() + \
                self.config.time_budget_seconds
        initial = FlowState(TRUE)
        initial.block = self.kernel.entry
        flows: List[FlowState] = [initial]
        try:
            while True:
                pending = [f for f in flows
                           if not f.finished and not f.at_barrier]
                if not pending:
                    # a synchronisation round: all flows at barrier or done
                    self._close_barrier_interval(flows)
                    alive = [f for f in flows if not f.finished]
                    if not alive:
                        break
                    for f in alive:
                        f.at_barrier = False
                        f.bi_accesses = AccessSet()
                        f.bi_index += 1
                    continue
                flow = pending[0]
                outcome = self._run_flow(flow)
                if isinstance(outcome, list):       # split
                    flows.remove(flow)
                    flows.extend(outcome)
                    self.num_splits += 1
                    for child in outcome:
                        if child.flow_id != flow.flow_id:
                            self.result.flow_events.append(
                                (flow.flow_id, child.flow_id,
                                 child.flow_cond))
                    if len(flows) > self.config.max_flows:
                        raise BudgetExhausted(
                            f"flow budget exceeded ({len(flows)})")
                self.result.max_flows = max(self.result.max_flows,
                                            len(flows))
        except BudgetExhausted as exc:
            self.result.timed_out = True
            self.result.warnings.append(str(exc))
            self._close_barrier_interval(flows)  # keep partial access sets
        self.result.steps = self.steps
        self.result.num_splits = self.num_splits
        self.result.final_flow_conds = [f.flow_cond for f in flows]
        for f in flows:
            for w in f.warnings:
                if w not in self.result.warnings:
                    self.result.warnings.append(w)
        self.result.elapsed_seconds = time.perf_counter() - started
        return self.result

    def _close_barrier_interval(self, flows: List[FlowState]) -> None:
        union = AccessSet()
        for f in flows:
            union.extend(f.bi_accesses)
            # zero after absorbing: finished flows stay in the list and
            # are re-visited by later barrier closes
            self.result.dedup_skipped += f.bi_accesses.dedup_skipped
            f.bi_accesses.dedup_skipped = 0
        if self.config.pair_pruning:
            union, collapsed = summarize_access_set(union)
            self.result.summarized_accesses += collapsed
        self.result.bi_access_sets.append(union)
        self.result.num_barriers += 1
        at_barrier = [f for f in flows if f.at_barrier]
        finished = [f for f in flows if f.finished]
        if at_barrier and finished:
            self.result.errors.append(
                "barrier divergence: some threads reach __syncthreads() "
                "while others have exited the kernel")

    # ------------------------------------------------------------------
    # flow execution until barrier / return / split
    # ------------------------------------------------------------------

    def _run_flow(self, flow: FlowState):
        block = flow.block
        idx = getattr(flow, "instr_index", 0)
        pending_resolver = getattr(flow, "pending_resolver", None)
        flow.pending_resolver = None

        while True:
            assert block is not None
            instrs = block.instrs
            if idx == 0:
                phis = block.phis()
                if pending_resolver is not None:
                    for phi in phis:
                        flow.set_reg(phi.result, pending_resolver(phi))
                    pending_resolver = None
                else:
                    for phi in phis:
                        flow.set_reg(
                            phi.result,
                            self._phi_incoming(flow, phi, flow.came_from))
                idx = len(phis)
            while idx < len(instrs):
                instr = instrs[idx]
                self._tick()
                if isinstance(instr, ir.Sync):
                    flow.at_barrier = True
                    flow.block = block
                    flow.instr_index = idx + 1
                    return "barrier"
                if isinstance(instr, ir.Ret):
                    flow.finished = True
                    return "finished"
                if isinstance(instr, ir.Jump):
                    flow.came_from = block
                    block = instr.target
                    idx = 0
                    break
                if isinstance(instr, ir.Br):
                    cond = self._as_cond(self._eval(flow, instr.cond))
                    if cond is TRUE:
                        flow.came_from = block
                        block, idx = instr.then_block, 0
                        break
                    if cond is FALSE:
                        flow.came_from = block
                        block, idx = instr.else_block, 0
                        break
                    if self.mode == "sesa" and self.mergeable.get(id(instr)):
                        resolver = self._merge_arms(flow, block, instr,
                                                    cond, TRUE)
                        target = self.ipostdom[block]
                        assert target is not None
                        flow.came_from = None
                        block, idx = target, 0
                        pending_resolver = resolver
                        break
                    return self._split_flow(flow, block, instr, cond, idx)
                self._exec(flow, instr, TRUE)
                idx += 1
            else:
                # ran past the last instruction without a terminator
                raise ExecutionError(
                    f"block {block.name} ended without terminator")
            if pending_resolver is not None and idx == 0:
                continue  # handled at top of loop

    def _split_flow(self, flow: FlowState, block: ir.BasicBlock,
                    br: ir.Br, cond: Term, idx: int) -> List[FlowState]:
        """Parametric flow split (GKLEEp semantics / structural divergence)."""
        is_loop = bool(br.meta.get("loop_branch"))
        if is_loop and flow.split_depth >= self.config.max_loop_splits:
            flow.warn(
                f"loop at line {br.loc} exceeded {self.config.max_loop_splits}"
                " symbolic iterations; forcing exit (bounded unrolling)")
            exit_block = self._loop_exit_successor(block, br)
            flow.came_from = block
            flow.block = exit_block
            flow.instr_index = 0
            return [flow]
        then_flow, else_flow = flow.split(cond, mk_not(cond))
        children = []
        for child, target in ((then_flow, br.then_block),
                              (else_flow, br.else_block)):
            if child.flow_cond is FALSE:
                continue
            if not self._feasible(child.flow_cond):
                continue
            child.came_from = block
            child.block = target
            child.instr_index = 0
            children.append(child)
        if not children:
            # both sides infeasible can only mean the flow itself is dead
            flow.finished = True
            return [flow]
        return children

    def _loop_exit_successor(self, block: ir.BasicBlock,
                             br: ir.Br) -> ir.BasicBlock:
        for loop in self.cfg.natural_loops():
            if loop.contains(block):
                for succ in br.successors():
                    if not loop.contains(succ):
                        return succ
        return br.else_block

    def _feasible(self, cond: Term) -> bool:
        key = id(cond)
        hit = self._feas_cache.get(key)
        if hit is not None:
            return hit
        self._feas_solver.assertions = list(self.env.bounds()) + \
            list(self.config.assumptions)
        verdict = self._feas_solver.check(cond) != CheckResult.UNSAT
        self._feas_cache[key] = verdict
        return verdict

    # ------------------------------------------------------------------
    # merged (flow-combined) diamond execution
    # ------------------------------------------------------------------

    def _merge_arms(self, flow: FlowState, block: ir.BasicBlock,
                    br: ir.Br, cond: Term, guard: Term
                    ) -> Callable[[ir.Phi], SymValue]:
        ipdom = self.ipostdom[block]
        assert ipdom is not None
        g_then = mk_and(guard, cond)
        g_else = mk_and(guard, mk_not(cond))

        if br.then_block is ipdom:
            res_then = self._direct_resolver(flow, block)
        else:
            res_then = self._run_segment(flow, br.then_block, block,
                                         ipdom, g_then)
        if br.else_block is ipdom:
            res_else = self._direct_resolver(flow, block)
        else:
            res_else = self._run_segment(flow, br.else_block, block,
                                         ipdom, g_else)

        combining = (self.config.flow_combining
                     and self.sink_value_ids is not None)
        sink_ids = self.sink_value_ids or set()

        def resolver(phi: ir.Phi) -> SymValue:
            v_then = res_then(phi)
            v_else = res_else(phi)
            if combining and id(phi.result) not in sink_ids:
                # §V Ex. 2: merged values that feed no sensitive sink can
                # be represented by either side ("undef" in the paper)
                return v_then
            return self._merge_values(flow, cond, v_then, v_else)
        return resolver

    def _direct_resolver(self, flow: FlowState, pred: ir.BasicBlock
                         ) -> Callable[[ir.Phi], SymValue]:
        def resolver(phi: ir.Phi) -> SymValue:
            return self._phi_incoming(flow, phi, pred)
        return resolver

    def _merge_values(self, flow: FlowState, cond: Term, v_then: SymValue,
                      v_else: SymValue) -> SymValue:
        if isinstance(v_then, Pointer) or isinstance(v_else, Pointer):
            if (isinstance(v_then, Pointer) and isinstance(v_else, Pointer)
                    and v_then.obj is v_else.obj):
                return Pointer(v_then.obj,
                               mk_ite(cond, v_then.offset, v_else.offset))
            flow.warn("merged pointers to different objects; keeping the "
                      "then-side value (may under-approximate)")
            return v_then
        if isinstance(v_then, Term) and isinstance(v_else, Term):
            if v_then.sort != v_else.sort:
                return v_then
            return mk_ite(cond, v_then, v_else)
        return v_then

    def _run_segment(self, flow: FlowState, entry: ir.BasicBlock,
                     pred: Optional[ir.BasicBlock], stop: ir.BasicBlock,
                     guard: Term) -> Callable[[ir.Phi], SymValue]:
        """Execute from ``entry`` until reaching ``stop`` under ``guard``.

        Returns a resolver giving, for each phi of ``stop``, the value as
        seen along this path. The branch classification guarantees the
        segment contains no barrier, return, or loop.
        """
        block = entry
        prev: Optional[ir.BasicBlock] = pred
        resolver_in: Optional[Callable] = None
        hops = 0
        while block is not stop:
            hops += 1
            if hops > 4 * len(self.kernel.blocks):
                raise ExecutionError(
                    "divergent region failed to reconverge "
                    f"(started at {entry.name})")
            phis = block.phis()
            if resolver_in is not None:
                for phi in phis:
                    flow.set_reg(phi.result, resolver_in(phi))
                resolver_in = None
            else:
                for phi in phis:
                    flow.set_reg(phi.result,
                                 self._phi_incoming(flow, phi, prev))
            term: Optional[ir.Instruction] = None
            for instr in block.instrs[len(phis):]:
                self._tick()
                if isinstance(instr, (ir.Sync, ir.Ret)):
                    raise ExecutionError(
                        "barrier/return inside a merged region "
                        "(classification bug)")
                if instr.is_terminator():
                    term = instr
                    break
                self._exec(flow, instr, guard)
            if isinstance(term, ir.Jump):
                prev, block = block, term.target
            elif isinstance(term, ir.Br):
                cond = self._as_cond(self._eval(flow, term.cond))
                if cond is TRUE:
                    prev, block = block, term.then_block
                elif cond is FALSE:
                    prev, block = block, term.else_block
                else:
                    inner = self._merge_arms(flow, block, term, cond,
                                             guard)
                    target = self.ipostdom[block]
                    assert target is not None
                    if target is stop:
                        return inner
                    resolver_in = inner
                    prev, block = None, target
            else:
                raise ExecutionError(f"block {block.name} lacks terminator")
        if resolver_in is not None:
            return resolver_in
        final_pred = prev

        def resolver(phi: ir.Phi) -> SymValue:
            return self._phi_incoming(flow, phi, final_pred)
        return resolver

    def _phi_incoming(self, flow: FlowState, phi: ir.Phi,
                      pred: Optional[ir.BasicBlock]) -> SymValue:
        for block, value in phi.incoming:
            if block is pred:
                return self._eval(flow, value)
        raise ExecutionError(
            f"phi {phi!r} has no incoming for predecessor "
            f"{pred.name if pred else None}")

    # ------------------------------------------------------------------
    # instruction semantics
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.config.max_steps:
            raise BudgetExhausted(f"step budget exceeded ({self.steps})")
        if self._deadline is not None and (self.steps & 0xFF) == 0 \
                and time.monotonic() > self._deadline:
            raise BudgetExhausted("wall-clock budget exceeded")

    def _eval(self, flow: FlowState, value: ir.Value) -> SymValue:
        if isinstance(value, ir.Constant):
            if isinstance(value.type, ir.IntType) and value.type.width == 1:
                return mk_bool(bool(value.value))
            return mk_bv(value.value, width_of(value.type))
        if isinstance(value, ir.Register):
            return flow.get_reg(value)
        if isinstance(value, ir.Argument):
            return self.arg_values[id(value)]
        if isinstance(value, ir.GlobalVariable):
            return Pointer(self.objects[id(value)], mk_bv(0, 32))
        if isinstance(value, ir.BuiltinValue):
            return self.env.lookup(value.name)
        raise ExecutionError(f"cannot evaluate {value!r}")

    @staticmethod
    def _as_cond(value: SymValue) -> Term:
        if isinstance(value, Term) and value.sort is BOOL:
            return value
        if isinstance(value, Term):
            return mk_ne(value, mk_bv(0, value.width))
        raise ExecutionError("pointer used as branch condition")

    def _exec(self, flow: FlowState, instr: ir.Instruction,
              guard: Term) -> None:
        if isinstance(instr, ir.BinOp):
            flow.set_reg(instr.result, self._exec_binop(flow, instr))
        elif isinstance(instr, ir.ICmp):
            flow.set_reg(instr.result, self._exec_icmp(flow, instr))
        elif isinstance(instr, ir.FCmp):
            a = self._eval(flow, instr.ops[0])
            b = self._eval(flow, instr.ops[1])
            raw = mk_uf(f"fcmp:{instr.pred}", (a, b), 1)
            flow.set_reg(instr.result, mk_eq(raw, mk_bv(1, 1)))
        elif isinstance(instr, ir.Select):
            cond = self._as_cond(self._eval(flow, instr.ops[0]))
            then = self._eval(flow, instr.ops[1])
            other = self._eval(flow, instr.ops[2])
            if cond is TRUE:
                flow.set_reg(instr.result, then)
            elif cond is FALSE:
                flow.set_reg(instr.result, other)
            else:
                flow.set_reg(instr.result,
                             self._merge_values(flow, cond, then, other))
        elif isinstance(instr, ir.Cast):
            flow.set_reg(instr.result, self._exec_cast(flow, instr))
        elif isinstance(instr, ir.Alloca):
            obj = self._local_objs.get(id(instr))
            if obj is None:
                size = instr.allocated_type.size_bytes() * instr.count
                obj = MemoryObject(name=f"%{instr.result.name}",
                                   space=ir.MemSpace.LOCAL, size_bytes=size,
                                   elem_width=min(
                                       64, instr.allocated_type.size_bytes()
                                       * 8))
                self._local_objs[id(instr)] = obj
            flow.local.allocate(id(obj), obj.size_bytes or 0)
            flow.set_reg(instr.result, Pointer(obj, mk_bv(0, 32)))
        elif isinstance(instr, ir.GEP):
            base = self._eval(flow, instr.base)
            if not isinstance(base, Pointer):
                raise ExecutionError("GEP base is not a pointer")
            index = self._eval(flow, instr.index)
            if not isinstance(index, Term):
                raise ExecutionError("GEP index is not an integer")
            flow.set_reg(instr.result,
                         base.advanced(index, instr.elem_size()))
        elif isinstance(instr, ir.Load):
            flow.set_reg(instr.result, self._exec_load(flow, instr, guard))
        elif isinstance(instr, ir.Store):
            self._exec_store(flow, instr, guard)
        elif isinstance(instr, (ir.AtomicRMW, ir.AtomicCAS)):
            self._exec_atomic(flow, instr, guard)
        elif isinstance(instr, ir.Call):
            self._exec_call(flow, instr, guard)
        elif isinstance(instr, ir.Phi):
            raise ExecutionError("phi outside block entry")
        else:
            raise ExecutionError(f"unsupported instruction {instr!r}")

    def _exec_binop(self, flow: FlowState, instr: ir.BinOp) -> SymValue:
        a = self._eval(flow, instr.lhs)
        b = self._eval(flow, instr.rhs)
        op = instr.op
        if op in ir.FLOAT_BINOPS:
            assert isinstance(a, Term) and isinstance(b, Term)
            return mk_uf(f"f:{op}", (a, b), a.width)
        assert isinstance(a, Term) and isinstance(b, Term)
        if a.sort is BOOL or b.sort is BOOL:
            # i1 arithmetic (boolean connectives from the front-end)
            a_b = a if a.sort is BOOL else mk_ne(a, mk_bv(0, a.width))
            b_b = b if b.sort is BOOL else mk_ne(b, mk_bv(0, b.width))
            if op == "xor":
                return mk_bxor(a_b, b_b)
            if op in _BOOL_BINOP:
                return _BOOL_BINOP[op](a_b, b_b)
            raise ExecutionError(f"boolean operands for {op}")
        if a.width != b.width:
            b = fit_width(b, a.width)
        return _INT_BINOP[op](a, b)

    def _exec_icmp(self, flow: FlowState, instr: ir.ICmp) -> Term:
        a = self._eval(flow, instr.lhs)
        b = self._eval(flow, instr.rhs)
        if isinstance(a, Pointer) or isinstance(b, Pointer):
            if isinstance(a, Pointer) and isinstance(b, Pointer):
                same = mk_eq(a.offset, b.offset) if a.obj is b.obj else FALSE
                if instr.pred == "eq":
                    return same
                if instr.pred == "ne":
                    return mk_not(same)
                if a.obj is b.obj:
                    return _ICMP[instr.pred](a.offset, b.offset)
            raise ExecutionError(
                f"unsupported pointer comparison {instr.pred}")
        assert isinstance(a, Term) and isinstance(b, Term)
        if a.sort is BOOL and b.sort is BOOL:
            result = mk_eq(a, b)
            return result if instr.pred == "eq" else mk_not(result)
        if a.width != b.width:
            b = fit_width(b, a.width)
        return _ICMP[instr.pred](a, b)

    def _exec_cast(self, flow: FlowState, instr: ir.Cast) -> SymValue:
        value = self._eval(flow, instr.value)
        target_width = width_of(instr.result.type) \
            if not instr.result.type.is_pointer() else 64
        kind = instr.kind
        if isinstance(value, Pointer):
            if kind == "bitcast":
                return value
            raise ExecutionError(f"cast {kind} on pointer")
        assert isinstance(value, Term)
        if value.sort is BOOL:
            if kind in ("zext", "sext", "bitcast"):
                return mk_ite(value, mk_bv(1, target_width),
                              mk_bv(0, target_width))
            raise ExecutionError(f"cast {kind} on i1")
        if kind == "zext":
            return mk_zext(value, target_width)
        if kind == "sext":
            return mk_sext(value, target_width)
        if kind == "trunc":
            if target_width == 1 and isinstance(instr.result.type,
                                                ir.IntType):
                return mk_eq(mk_extract(value, 0, 0), mk_bv(1, 1))
            return mk_extract(value, target_width - 1, 0)
        if kind == "bitcast":
            return value
        # float<->int conversions are opaque (see DESIGN.md)
        return mk_uf(f"cast:{kind}", (value,), target_width)

    # -- memory ----------------------------------------------------------

    def _access_cond(self, flow: FlowState, guard: Term) -> Term:
        return mk_and(flow.flow_cond, guard)

    def _exec_load(self, flow: FlowState, instr: ir.Load,
                   guard: Term) -> SymValue:
        ptr = self._eval(flow, instr.pointer)
        if not isinstance(ptr, Pointer):
            raise ExecutionError("load from non-pointer")
        width = width_of(instr.result.type)
        if ptr.obj.space == ir.MemSpace.LOCAL:
            return flow.local.load(id(ptr.obj), ptr.offset, width)
        flow.record(Access(
            kind=AccessKind.READ, obj=ptr.obj, offset=ptr.offset,
            size=max(1, width // 8), cond=self._access_cond(flow, guard),
            flow_id=flow.flow_id, bi_index=flow.bi_index,
            instr_id=id(instr), loc=instr.loc))
        value, resolved = flow.log_for(ptr.obj).resolve_read(
            ptr.offset, width)
        if not resolved:
            flow.warn(f"read of {ptr.obj.name} could observe other "
                      "threads' writes; value havocked")
        return value

    def _exec_store(self, flow: FlowState, instr: ir.Store,
                    guard: Term) -> None:
        ptr = self._eval(flow, instr.pointer)
        if not isinstance(ptr, Pointer):
            raise ExecutionError("store to non-pointer")
        value = self._eval(flow, instr.value)
        if isinstance(value, Pointer):
            flow.warn("storing a pointer to memory is not tracked")
            value = make_havoc(64, "ptr-store")
        if isinstance(value, Term) and value.sort is BOOL:
            value = mk_ite(value, mk_bv(1, 8), mk_bv(0, 8))
            width = 8
        else:
            width = width_of(instr.value.type) \
                if not instr.value.type.is_pointer() else 64
        if ptr.obj.space == ir.MemSpace.LOCAL:
            flow.local.store(id(ptr.obj), ptr.offset, value, guard)
            return
        cond = self._access_cond(flow, guard)
        flow.record(Access(
            kind=AccessKind.WRITE, obj=ptr.obj, offset=ptr.offset,
            size=max(1, width // 8), cond=cond, flow_id=flow.flow_id,
            bi_index=flow.bi_index, instr_id=id(instr), loc=instr.loc,
            value=value))
        flow.log_for(ptr.obj).append(WriteRecord(
            guard=guard, offset=ptr.offset, value=value, width=width,
            instr_id=id(instr)))

    def _exec_atomic(self, flow: FlowState, instr, guard: Term) -> None:
        ptr = self._eval(flow, instr.pointer)
        if not isinstance(ptr, Pointer):
            raise ExecutionError("atomic on non-pointer")
        width = width_of(instr.result.type)
        cond = self._access_cond(flow, guard)
        value_op = instr.ops[1] if isinstance(instr, ir.AtomicRMW) \
            else instr.ops[2]
        value = self._eval(flow, value_op)
        if isinstance(value, Pointer):
            value = make_havoc(width, "atomic-ptr")
        flow.record(Access(
            kind=AccessKind.ATOMIC, obj=ptr.obj, offset=ptr.offset,
            size=max(1, width // 8), cond=cond, flow_id=flow.flow_id,
            bi_index=flow.bi_index, instr_id=id(instr), loc=instr.loc,
            value=value if isinstance(value, Term) else None))
        flow.log_for(ptr.obj).append(WriteRecord(
            guard=guard, offset=ptr.offset,
            value=make_havoc(width, f"atomic:{ptr.obj.name}"), width=width,
            instr_id=id(instr), atomic=True))
        # CUDA atomics return the previous value, unknowable parametrically
        flow.set_reg(instr.result, make_havoc(width, "atomic-old"))

    def _exec_call(self, flow: FlowState, instr: ir.Call,
                   guard: Term = TRUE) -> None:
        args = [self._eval(flow, a) for a in instr.ops]
        if instr.callee in ("__assert",):
            claim = self._as_cond(args[0])
            reached = mk_and(flow.flow_cond, guard)
            self.result.assertions.append((reached, claim, instr.loc))
            return
        if instr.result is not None:
            terms = tuple(a for a in args if isinstance(a, Term))
            width = width_of(instr.result.type)
            flow.set_reg(instr.result,
                         mk_uf(f"call:{instr.callee}", terms, width))
