"""Memory model of the symbolic VM.

Three kinds of objects, matching the CUDA hierarchy:

* LOCAL — thread-private (alloca'd arrays and spilled scalars). Stored as
  a concrete-offset map; symbolic indexing into a local array havocs.
* SHARED — one object per ``__shared__`` declaration, per block.
* GLOBAL — one object per kernel pointer argument (size set by the launch
  configuration).

Shared/global objects do not hold a flat value map: every store is kept
as a *write record* (guard, offset term, value) and loads are resolved
against the log, which is exactly what parametric race checking needs.
A load resolves precisely when every potentially-aliasing write has a
syntactically identical offset (the paper's "read over the parametric
thread's own write"); otherwise the value is havocked and tagged, which
the resolvability analysis (§IV-B) picks up.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import ir
from ..smt import TRUE, Term, mk_bv, mk_ite
from ..smt.terms import mk_uf

_havoc_counter = itertools.count()

#: UF namespace tags (recognisable in terms)
HAVOC_TAG = "havoc"
INPUT_TAG = "in"
UNINIT_TAG = "uninit"


def make_havoc(width: int, why: str) -> Term:
    """A fresh unconstrained value, tagged so resolvability analysis can
    find it inside access conditions/addresses."""
    return mk_uf(f"{HAVOC_TAG}:{why}:{next(_havoc_counter)}", (), width)


def is_havoc_term(term: Term) -> bool:
    """Is this term a tagged havoc symbol?"""
    from ..smt.terms import Op
    return term.op == Op.UF and str(term.payload).startswith(HAVOC_TAG + ":")


def contains_havoc(term: Term) -> bool:
    """Does any havoc symbol occur in the term DAG?"""
    from ..smt import iter_dag
    return any(is_havoc_term(t) for t in iter_dag([term]))


@dataclass
class MemoryObject:
    """A distinct allocation visible to the race checker."""

    name: str
    space: ir.MemSpace
    size_bytes: Optional[int]     # None: unknown/unbounded (no OOB check)
    elem_width: int = 32          # bit width of the canonical element
    is_symbolic_input: bool = False
    concrete_values: Optional[List[int]] = None  # for concrete input arrays

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    def input_value_at(self, offset: Term, width: int) -> Term:
        """Value of an input buffer cell prior to any kernel write."""
        if self.is_symbolic_input:
            return mk_uf(f"{INPUT_TAG}:{self.name}", (offset,), width)
        if self.concrete_values is not None and offset.is_const():
            index = offset.value // max(1, self.elem_width // 8)
            if 0 <= index < len(self.concrete_values):
                return mk_bv(self.concrete_values[index], width)
        if self.space == ir.MemSpace.SHARED:
            return mk_uf(f"{UNINIT_TAG}:{self.name}", (offset,), width)
        if offset.is_const():
            return mk_bv(0, width)  # concrete inputs default to zero fill
        return mk_uf(f"{INPUT_TAG}:{self.name}", (offset,), width)


@dataclass(frozen=True)
class WriteRecord:
    """One store to a shared/global object by the parametric thread."""

    guard: Term        # path guard within the flow (flow cond excluded)
    offset: Term       # byte offset
    value: Term
    width: int
    instr_id: int
    atomic: bool = False


class ObjectLog:
    """Per-flow write log for one shareable object.

    Copy-on-write so that flow splits are O(1): children share the parent
    list and only append to their own tail.
    """

    __slots__ = ("obj", "_records",)

    def __init__(self, obj: MemoryObject,
                 records: Optional[List[WriteRecord]] = None) -> None:
        self.obj = obj
        self._records: List[WriteRecord] = records if records is not None \
            else []

    def clone(self) -> "ObjectLog":
        return ObjectLog(self.obj, list(self._records))

    def append(self, record: WriteRecord) -> None:
        self._records.append(record)

    def records(self) -> List[WriteRecord]:
        return self._records

    def resolve_read(self, offset: Term, width: int) -> Tuple[Term, bool]:
        """Value at ``offset``; returns (value, resolved_precisely).

        Precise when every write that might alias the read has an offset
        syntactically identical to it (same parametric thread, same cell);
        then the value is the guarded fold of those writes over the
        initial contents. Otherwise havoc.
        """
        matching: List[WriteRecord] = []
        for rec in self._records:
            if rec.offset is offset:
                matching.append(rec)
            elif rec.offset.is_const() and offset.is_const():
                continue  # distinct concrete cells never alias
            else:
                return (make_havoc(width, f"read:{self.obj.name}"), False)
        value = self.obj.input_value_at(offset, width)
        for rec in matching:
            if rec.atomic:
                return (make_havoc(width, f"atomic:{self.obj.name}"), False)
            rec_value = rec.value
            if rec.width != width:
                return (make_havoc(width, f"width:{self.obj.name}"), False)
            value = rec_value if rec.guard is TRUE \
                else mk_ite(rec.guard, rec_value, value)
        return (value, True)


class LocalMemory:
    """Thread-private memory: concrete offsets → terms."""

    def __init__(self) -> None:
        self.objects: Dict[int, Dict[int, Term]] = {}
        self.sizes: Dict[int, int] = {}

    def clone(self) -> "LocalMemory":
        copy = LocalMemory()
        copy.objects = {k: dict(v) for k, v in self.objects.items()}
        copy.sizes = dict(self.sizes)
        return copy

    def allocate(self, key: int, size_bytes: int) -> None:
        self.objects.setdefault(key, {})
        self.sizes[key] = size_bytes

    def store(self, key: int, offset: Term, value: Term,
              guard: Term) -> bool:
        """Returns False if the store had to be dropped (symbolic offset)."""
        cells = self.objects.setdefault(key, {})
        if not offset.is_const():
            # symbolic index into a private array: havoc the whole object
            self.objects[key] = {}
            return False
        off = offset.value
        if guard is not TRUE and off in cells:
            value = mk_ite(guard, value, cells[off])
        elif guard is not TRUE:
            value = mk_ite(guard, value,
                           make_havoc(value.width, "local-uninit"))
        cells[off] = value
        return True

    def load(self, key: int, offset: Term, width: int) -> Term:
        cells = self.objects.get(key, {})
        if not offset.is_const():
            return make_havoc(width, "local-symbolic-index")
        value = cells.get(offset.value)
        if value is None:
            return make_havoc(width, "local-uninit")
        if value.width != width:
            from .value import fit_width
            return fit_width(value, width)
        return value
