"""Swarm verification: partition one race check into solver shards.

One hard kernel is normally one sequential job even though the service
stack runs many kernels in parallel. Swarm mode splits a *single*
kernel's candidate-pair space into independently solvable shards — the
Lazy-CSeq/Verismart "swarm" idea applied to the paper's per-interval
race argument — and merges the shard verdicts back into one report.

The partition is defined over **ordinals of the canonical pair
enumeration** (:meth:`RaceChecker.iter_grouped_pairs`): a deterministic
walk of barrier intervals → shared objects → disjointness buckets,
then cross-interval global pairs. Each shard owns a set of half-open
ordinal ranges; a shard re-derives the enumeration in its own process
and checks exactly the pairs inside its ranges. Shard boundaries
prefer enumeration-group edges (interval/object/bucket), recursively
halving any group larger than the size budget.

Soundness of the merge (this is where silent unsoundness would hide):

* every ordinal lands in **exactly one** shard — checked structurally
  by :func:`validate_partition` and property-tested;
* a shard whose own enumeration disagrees with the planned
  ``total_pairs`` reports a plan mismatch and is *unknown*, never safe;
* any shard that crashed, timed out, or ran out of budget makes the
  merged verdict *unknown* (``timed_out`` is set, the unresolved
  shards are listed) — only a full set of clean SAFE shards merges to
  SAFE;
* any racy shard makes the merge racy, carrying that shard's witness.

Racy merges reproduce the monolithic report exactly: every emitted
race is tagged with its pair ordinal, the merge sorts by ordinal and
truncates to ``max_reports`` — the same "first N SAT pairs in
enumeration order" the sequential checker reports. (A shard stops
early only after finding ``max_reports`` races of its own, and those
already fill the merged cap before any ordinal the shard skipped.)
"""
from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ShardSelector:
    """One shard's slice of the canonical pair enumeration.

    ``ranges`` are sorted, disjoint, half-open ``[lo, hi)`` ordinal
    intervals. ``total_pairs`` is the planner's pair count for the
    whole kernel — the shard re-counts during its own enumeration and
    flags a mismatch (≠ plan) as *unknown*. Exactly one shard per plan
    carries ``check_aux`` and runs the single-thread OOB/assertion
    checks (they are not pair-indexed, so exactly-once coverage needs
    a designated owner).
    """

    index: int
    count: int
    total_pairs: int
    ranges: Tuple[Tuple[int, int], ...]
    check_aux: bool = False

    def __post_init__(self) -> None:
        if not (0 <= self.index < self.count):
            raise ValueError(f"shard index {self.index} outside "
                             f"0..{self.count - 1}")
        if self.total_pairs < 0:
            raise ValueError("total_pairs must be >= 0")
        prev = 0
        for lo, hi in self.ranges:
            if lo < prev or hi <= lo or hi > self.total_pairs:
                raise ValueError(
                    f"malformed shard ranges {self.ranges!r} "
                    f"(total {self.total_pairs})")
            prev = hi

    @property
    def num_pairs(self) -> int:
        return sum(hi - lo for lo, hi in self.ranges)

    def contains(self, ordinal: int) -> bool:
        i = bisect_right(self.ranges, (ordinal, math.inf)) - 1
        return i >= 0 and self.ranges[i][0] <= ordinal < self.ranges[i][1]

    def label(self) -> str:
        return f"s{self.index + 1}of{self.count}"

    def to_dict(self) -> dict:
        return {"index": self.index, "count": self.count,
                "total_pairs": self.total_pairs,
                "ranges": [[lo, hi] for lo, hi in self.ranges],
                "check_aux": self.check_aux}

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSelector":
        if not isinstance(data, dict):
            raise ValueError(f"shard must be an object, got "
                             f"{type(data).__name__}")
        try:
            return cls(
                index=int(data["index"]), count=int(data["count"]),
                total_pairs=int(data["total_pairs"]),
                ranges=tuple((int(lo), int(hi))
                             for lo, hi in data.get("ranges", ())),
                check_aux=bool(data.get("check_aux", False)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed shard descriptor: {exc}") \
                from None


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------

def split_span(lo: int, hi: int, budget: int) -> List[Tuple[int, int]]:
    """Recursively halve ``[lo, hi)`` until every piece is ≤ budget.

    Halving (not greedy slicing) keeps the pieces balanced, and with
    ``budget >= 1`` and strictly shrinking halves it terminates for
    any span — the property test drives this with random spans.
    """
    budget = max(1, budget)
    out: List[Tuple[int, int]] = []
    stack = [(lo, hi)]
    while stack:
        a, b = stack.pop()
        if b - a <= budget:
            out.append((a, b))
            continue
        mid = (a + b) // 2
        # push right first so the output comes back in ascending order
        stack.append((mid, b))
        stack.append((a, mid))
    return out


def plan_partitions(group_sizes: Sequence[int], num_shards: int,
                    max_pairs_per_shard: Optional[int] = None,
                    ) -> List[ShardSelector]:
    """Partition the enumeration into at most *num_shards* shards.

    *group_sizes* are the sizes of the contiguous enumeration groups
    (interval × object × bucket spans, then cross-interval spans) in
    enumeration order; group ``g`` owns ordinals
    ``[sum(sizes[:g]), sum(sizes[:g+1]))``. Groups stay intact unless
    they exceed the per-shard budget, in which case they are
    recursively halved; the chunks are then LPT-packed (largest first
    onto the least-loaded shard) and adjacent ranges coalesced.

    Every ordinal lands in exactly one shard; empty shards are
    dropped, so fewer than *num_shards* selectors can come back.
    Exactly one selector carries ``check_aux`` (the least-loaded one).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if any(s < 0 for s in group_sizes):
        raise ValueError("group sizes must be >= 0")
    total = sum(group_sizes)
    if total == 0:
        # nothing to split: one aux-only shard keeps OOB/assert coverage
        return [ShardSelector(index=0, count=1, total_pairs=0,
                              ranges=(), check_aux=True)]
    budget = max_pairs_per_shard if max_pairs_per_shard is not None \
        else math.ceil(total / num_shards)
    budget = max(1, budget)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for size in group_sizes:
        if size > 0:
            chunks.extend(split_span(start, start + size, budget))
        start += size
    # LPT greedy packing: biggest chunk first (earliest ordinal breaks
    # ties) onto the least-loaded bin — classic 4/3-approx makespan
    n_bins = min(num_shards, len(chunks))
    order = sorted(range(len(chunks)),
                   key=lambda i: (chunks[i][0] - chunks[i][1],
                                  chunks[i][0]))
    bins: List[List[Tuple[int, int]]] = [[] for _ in range(n_bins)]
    loads = [0] * n_bins
    for i in order:
        lo, hi = chunks[i]
        b = min(range(n_bins), key=lambda k: (loads[k], k))
        bins[b].append((lo, hi))
        loads[b] += hi - lo
    aux_bin = min(range(n_bins), key=lambda k: (loads[k], k))
    selectors = []
    for idx, spans in enumerate(bins):
        spans.sort()
        merged: List[List[int]] = []
        for lo, hi in spans:
            if merged and merged[-1][1] == lo:
                merged[-1][1] = hi
            else:
                merged.append([lo, hi])
        selectors.append(ShardSelector(
            index=idx, count=n_bins, total_pairs=total,
            ranges=tuple((lo, hi) for lo, hi in merged),
            check_aux=(idx == aux_bin)))
    return selectors


def validate_partition(selectors: Sequence[ShardSelector]) -> None:
    """Raise unless the selectors tile ``[0, total_pairs)`` exactly
    once and designate exactly one aux owner."""
    if not selectors:
        raise ValueError("empty partition")
    totals = {s.total_pairs for s in selectors}
    if len(totals) != 1:
        raise ValueError(f"inconsistent total_pairs: {sorted(totals)}")
    total = totals.pop()
    spans = sorted(r for s in selectors for r in s.ranges)
    cursor = 0
    for lo, hi in spans:
        if lo != cursor:
            raise ValueError(
                f"partition {'overlap' if lo < cursor else 'gap'} at "
                f"ordinal {min(lo, cursor)}")
        cursor = hi
    if cursor != total:
        raise ValueError(f"partition covers {cursor} of {total} pairs")
    aux = sum(1 for s in selectors if s.check_aux)
    if aux != 1:
        raise ValueError(f"{aux} aux owners (want exactly 1)")


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------

#: classification of one shard's outcome
RACY, SAFE, UNKNOWN = "racy", "safe", "unknown"


@dataclass
class ShardOutcome:
    """One shard's result as seen by the merger (plain data — the
    shard may have run in another process, or never run at all)."""

    shard: ShardSelector
    status: str                 # JobStatus / JobState string
    verdict: Optional[dict] = None   # AnalysisReport.to_dict() shape
    job_id: Optional[str] = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0

    def classify(self) -> str:
        """RACY / SAFE / UNKNOWN. Anything short of a clean completed
        verdict is UNKNOWN — a crashed or killed shard can never make
        the merge safer."""
        if self.status not in ("done", "cached") or self.verdict is None:
            return UNKNOWN
        if self.verdict.get("timed_out"):
            return UNKNOWN
        if self.verdict.get("races"):
            return RACY
        return SAFE


def merge_check_stats(stats: Iterable[Optional[dict]]) -> Optional[dict]:
    """Sum numeric counters recursively across shard CheckStats dicts
    (bools and non-numerics keep the first value seen)."""
    merged: Optional[dict] = None
    for cs in stats:
        if not isinstance(cs, dict):
            continue
        if merged is None:
            merged = _sum_dicts({}, cs)
        else:
            merged = _sum_dicts(merged, cs)
    return merged


def _sum_dicts(acc: dict, new: dict) -> dict:
    for key, value in new.items():
        if isinstance(value, dict):
            inner = acc.get(key)
            acc[key] = _sum_dicts(inner if isinstance(inner, dict)
                                  else {}, value)
        elif isinstance(value, bool):
            acc[key] = acc.get(key, False) or value
        elif isinstance(value, (int, float)):
            acc[key] = acc.get(key, 0) + value
        elif key not in acc:
            acc[key] = value
    return acc


def merge_shard_outcomes(outcomes: Sequence[ShardOutcome],
                         max_reports: int = 16) -> dict:
    """Combine shard outcomes into one AnalysisReport-shaped verdict.

    Verdict rule: any RACY shard ⇒ racy (that shard's witnesses ride
    along); all shards SAFE ⇒ safe; any UNKNOWN ⇒ ``timed_out`` is set
    and the unresolved shards are listed in ``warnings`` — the merge
    can then never be read as a clean SAFE.
    """
    if not outcomes:
        raise ValueError("cannot merge zero shard outcomes")
    validate_partition([o.shard for o in outcomes])

    classes = [o.classify() for o in outcomes]
    unresolved = [o for o, c in zip(outcomes, classes) if c == UNKNOWN]
    overall = RACY if RACY in classes else \
        (UNKNOWN if unresolved else SAFE)

    base = next((o.verdict for o in outcomes if o.verdict), None) or {}
    races: List[dict] = []
    oobs: List[dict] = []
    asserts: List[dict] = []
    warnings: List[str] = []
    seen_warn = set()
    for outcome in outcomes:
        verdict = outcome.verdict or {}
        races.extend(verdict.get("races") or ())
        oobs.extend(verdict.get("oobs") or ())
        asserts.extend(verdict.get("assertion_failures") or ())
        for w in verdict.get("warnings") or ():
            if w not in seen_warn:
                seen_warn.add(w)
                warnings.append(w)
    for outcome in unresolved:
        warnings.append(
            f"swarm: shard {outcome.shard.label()} unresolved "
            f"(status {outcome.status}"
            + (f": {outcome.error}" if outcome.error else "") + ")")
    # monolithic replay: first max_reports SAT pairs in enumeration
    # order (ordinals are globally unique, so the sort is total)
    races.sort(key=lambda r: (r.get("ordinal")
                              if r.get("ordinal") is not None else -1))
    races = races[:max_reports]
    oobs = oobs[:max_reports]
    asserts = asserts[:max_reports]

    merged_stats = merge_check_stats(
        o.verdict.get("check_stats") if o.verdict else None
        for o in outcomes)
    if merged_stats is not None:
        merged_stats["races_found"] = len(races)
        merged_stats["oob_found"] = len(oobs)

    return {
        "kernel": base.get("kernel"),
        "engine": base.get("engine", "sesa"),
        "races": races,
        "oobs": oobs,
        "assertion_failures": asserts,
        "flows": base.get("flows", 0),
        "resolvable": base.get("resolvable", "?"),
        "timed_out": bool(unresolved)
        or any((o.verdict or {}).get("timed_out") for o in outcomes),
        "warnings": warnings,
        "symbolic_inputs": base.get("symbolic_inputs"),
        "check_stats": merged_stats,
        "repair": None,
        "elapsed_seconds": sum(
            (o.verdict or {}).get("elapsed_seconds") or 0.0
            for o in outcomes),
        "swarm": {
            "verdict": overall,
            "shards": len(outcomes),
            "total_pairs": outcomes[0].shard.total_pairs,
            "unresolved": [o.shard.label() for o in unresolved],
            "shard_job_ids": [o.job_id for o in outcomes],
        },
    }
