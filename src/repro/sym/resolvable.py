"""Resolvability analysis (paper §IV-B).

An access ``c ? v`` is *resolvable* when neither the guard ``c`` nor the
address depends on a value written by other threads (a global SIMD
write). The executor havocs such values and tags them; this module scans
the collected access sets for the tags and produces the paper's
``RSLV?`` verdict: when every access is resolvable, parametric checking
is sound and complete (the §IV-B Proposition); otherwise races may be
spurious or missed and the report says so.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .access import Access
from .executor import ExecutionResult
from .memory import contains_havoc


@dataclass
class ResolvabilityReport:
    resolvable: bool
    offending: List[Access] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        return "Y" if self.resolvable else "N"


def analyze_resolvability(result: ExecutionResult) -> ResolvabilityReport:
    """Scan the access sets for havoc-tainted guards/addresses."""
    offending: List[Access] = []
    for access in result.all_accesses():
        tainted = contains_havoc(access.cond) \
            or contains_havoc(access.offset)
        if tainted:
            offending.append(access)
    notes = []
    if offending:
        sample = offending[0]
        notes.append(
            "access guards/addresses depend on values written by other "
            f"threads (e.g. {sample.describe()}); the parametric check "
            "over-approximates these (possible false alarms or omissions, "
            "paper §IV-B)")
    return ResolvabilityReport(resolvable=not offending,
                               offending=offending, notes=notes)
