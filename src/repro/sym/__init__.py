"""The parametric symbolic VM: executor, memory model, race checking."""
from .access import Access, AccessKind, AccessSet, SummaryInfo, summarize_access_set
from .config import LaunchConfig, SymbolicEnv
from .executor import (
    BudgetExhausted, ExecutionError, ExecutionResult, Executor,
)
from .memory import (
    MemoryObject, ObjectLog, WriteRecord, contains_havoc, is_havoc_term,
    make_havoc,
)
from .races import (
    AssertionReport, CheckStats, OOBReport, RaceChecker, RaceReport,
    RaceWitness,
)
from .flowtree import render_flow_tree
from .resolvable import ResolvabilityReport, analyze_resolvability
from .swarm import (
    ShardOutcome, ShardSelector, merge_shard_outcomes, plan_partitions,
    validate_partition,
)
from .state import FlowState
from .value import Pointer, SymValue, fit_width, width_of

__all__ = [
    "Access", "AccessKind", "AccessSet", "SummaryInfo",
    "summarize_access_set", "LaunchConfig", "SymbolicEnv",
    "BudgetExhausted", "ExecutionError", "ExecutionResult", "Executor",
    "MemoryObject", "ObjectLog", "WriteRecord", "contains_havoc",
    "is_havoc_term", "make_havoc", "AssertionReport", "CheckStats", "OOBReport", "RaceChecker",
    "RaceReport", "RaceWitness", "ResolvabilityReport",
    "analyze_resolvability", "render_flow_tree", "FlowState", "Pointer", "SymValue",
    "fit_width", "width_of",
    "ShardOutcome", "ShardSelector", "merge_shard_outcomes",
    "plan_partitions", "validate_partition",
]
