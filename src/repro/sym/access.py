"""Conditional access records — the paper's ``condition ? access`` sets.

Every shared/global memory operation executed by the parametric thread
becomes an :class:`Access`: kind, object, symbolic byte offset, guard.
At each barrier the scheduler unions the per-flow sets into the barrier
interval's read/write sets and hands them to the race checker.

Two record-time reductions keep those sets small on loop-unrolled
kernels:

* **content dedup** — an unrolled iteration whose address, guard and
  stored value are all loop-invariant produces the *same* record every
  iteration; only the first copy is kept (``dedup_skipped`` counts the
  rest);
* **affine-run summarization** (:func:`summarize_access_set`) — runs of
  accesses from one instruction under one guard whose byte offsets form
  an arithmetic progression collapse into a single access over a fresh
  bounded index variable (``offset = base + k·stride``, ``k < n``),
  so N unrolled iterations contribute one record to the O(n²) pair
  enumeration instead of N.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from ..smt import TRUE, Term, mk_add, mk_and, mk_bv, mk_bv_var, mk_mul, \
    mk_ult
from ..smt.affine import affine_decompose
from .memory import MemoryObject

_access_counter = itertools.count()
_summary_counter = itertools.count()


class AccessKind(Enum):
    """Read / write / atomic read-modify-write."""
    READ = "R"
    WRITE = "W"
    ATOMIC = "A"      # atomic read-modify-write

    def is_write(self) -> bool:
        return self in (AccessKind.WRITE, AccessKind.ATOMIC)


@dataclass(frozen=True)
class SummaryInfo:
    """Marks an :class:`Access` as the summary of an affine run.

    ``index_var`` is the fresh bounded variable ``k`` in the summary's
    offset ``base + k·stride`` and guard conjunct ``k < count``.  The
    race checker instantiates ``k`` per thread side (``k!1``/``k!2``)
    exactly like the thread-id variables, so one summarized record
    still covers races *between* distinct unrolled iterations.
    """

    index_var: Term
    count: int
    stride: int


@dataclass
class Access:
    """One conditional access by the parametric thread of one flow."""

    kind: AccessKind
    obj: MemoryObject
    offset: Term                   # byte offset into obj
    size: int                      # bytes accessed
    cond: Term                     # flow condition ∧ local path guard
    flow_id: int
    bi_index: int                  # barrier interval ordinal
    instr_id: int                  # identity of the IR instruction
    loc: Optional[int] = None      # source line
    value: Optional[Term] = None   # stored value (writes)
    summary: Optional[SummaryInfo] = None
    uid: int = field(default_factory=lambda: next(_access_counter))

    def describe(self) -> str:
        where = f"line {self.loc}" if self.loc else f"instr {self.instr_id}"
        return (f"{self.kind.value} {self.obj.name}"
                f"[{self.offset!r}] @{where} if {self.cond!r}")

    def dedupe_key(self) -> tuple:
        # terms are interned, so id() is structural identity; the stored
        # value participates because benign-WW classification depends
        # on it — two writes of different values are NOT duplicates
        return (self.kind, id(self.obj), id(self.offset), self.size,
                id(self.cond), self.instr_id, id(self.value))


class AccessSet:
    """Accesses accumulated during one barrier interval by one flow."""

    def __init__(self) -> None:
        self.accesses: List[Access] = []
        self._seen: set = set()
        self._seen_content: set = set()
        #: loop-invariant re-records dropped by content dedup
        self.dedup_skipped: int = 0

    def add(self, access: Access) -> None:
        # dedupe by identity: flow splits hand children the parent's
        # Access objects, which must union back to one copy at the
        # barrier (not counted as a skip)
        if access.uid in self._seen:
            return
        self._seen.add(access.uid)
        # content dedup: a loop-invariant address/guard/value re-recorded
        # by every unrolled iteration is one access, not N
        key = access.dedupe_key()
        if key in self._seen_content:
            self.dedup_skipped += 1
            return
        self._seen_content.add(key)
        self.accesses.append(access)

    def extend(self, other: "AccessSet") -> None:
        # union of the accesses only — counters stay with their owner
        # (flows share Access objects across splits; absorbing counters
        # here would double-count them at the barrier union)
        for access in other.accesses:
            self.add(access)

    def reads(self) -> List[Access]:
        return [a for a in self.accesses if a.kind == AccessKind.READ]

    def writes(self) -> List[Access]:
        return [a for a in self.accesses if a.kind.is_write()]

    def by_object(self) -> Dict[MemoryObject, List[Access]]:
        out: Dict[MemoryObject, List[Access]] = {}
        for access in self.accesses:
            out.setdefault(access.obj, []).append(access)
        return out

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self):
        return iter(self.accesses)


def _group_key(access: Access) -> tuple:
    # everything that must agree for members to collapse into one
    # summary; value identity is included so benign-WW classification
    # (which compares stored values) survives summarization
    return (access.kind, id(access.obj), access.size, id(access.cond),
            access.instr_id, id(access.value), access.flow_id)


def _affine_progression(accesses: List[Access], width: int):
    """Offsets as ``base + i·stride``? Return (base_access, stride)."""
    decomps = []
    for access in accesses:
        decomp = affine_decompose(access.offset)
        if decomp is None:
            return None
        decomps.append(decomp)
    coefs0 = decomps[0][0]
    if any(coefs != coefs0 for coefs, _ in decomps[1:]):
        return None
    order = sorted(range(len(accesses)), key=lambda i: decomps[i][1])
    consts = [decomps[i][1] for i in order]
    stride = consts[1] - consts[0]
    if stride <= 0:
        return None
    if any(consts[i + 1] - consts[i] != stride
           for i in range(1, len(consts) - 1)):
        return None
    # the progression must not wrap the bit width, or k·stride in the
    # rebuilt offset would alias iterations mod 2^width
    if consts[0] + stride * (len(consts) - 1) >= (1 << width):
        return None
    return accesses[order[0]], stride


def summarize_access_set(access_set: "AccessSet") -> Tuple["AccessSet", int]:
    """Collapse affine runs of accesses into single summary records.

    Accesses from one instruction under one guard whose byte offsets
    form an arithmetic progression (identical affine coefficient maps,
    constants with a uniform positive gap) are replaced by one
    :class:`Access` over a fresh bounded index variable::

        offset = base_offset + k * stride      (k fresh, k < count)

    with ``k < count`` conjoined into the guard so the race checker's
    per-thread instantiation also makes ``k`` per-side.  Returns the
    (possibly new) set and the number of original records collapsed
    away (0 means the set is returned unchanged).
    """
    groups: Dict[tuple, List[Access]] = {}
    for access in access_set:
        groups.setdefault(_group_key(access), []).append(access)
    if all(len(g) < 2 for g in groups.values()):
        return access_set, 0

    collapsed = 0
    failed: set = set()
    out = AccessSet()
    out.dedup_skipped = access_set.dedup_skipped
    for access in access_set:
        key = _group_key(access)
        group = groups[key]
        if len(group) < 2:
            out.add(access)
            continue
        # the first member of a group drives the summarization attempt;
        # later members were either consumed by it or, if the attempt
        # failed, are kept individually
        if access is not group[0]:
            if key in failed:
                out.add(access)
            continue
        width = access.offset.width
        prog = _affine_progression(group, width)
        if prog is None:
            failed.add(key)
            out.add(access)
            continue
        base, stride = prog
        count = len(group)
        k = mk_bv_var(f"__sum_k{next(_summary_counter)}", width)
        offset = mk_add(base.offset, mk_mul(k, mk_bv(stride, width)))
        cond = mk_and(base.cond, mk_ult(k, mk_bv(count, width)))
        out.add(Access(
            kind=base.kind, obj=base.obj, offset=offset, size=base.size,
            cond=cond, flow_id=base.flow_id, bi_index=base.bi_index,
            instr_id=base.instr_id, loc=base.loc, value=base.value,
            summary=SummaryInfo(index_var=k, count=count, stride=stride)))
        collapsed += count - 1
    return out, collapsed
