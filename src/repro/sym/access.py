"""Conditional access records — the paper's ``condition ? access`` sets.

Every shared/global memory operation executed by the parametric thread
becomes an :class:`Access`: kind, object, symbolic byte offset, guard.
At each barrier the scheduler unions the per-flow sets into the barrier
interval's read/write sets and hands them to the race checker.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from ..smt import TRUE, Term, mk_and
from .memory import MemoryObject

_access_counter = itertools.count()


class AccessKind(Enum):
    """Read / write / atomic read-modify-write."""
    READ = "R"
    WRITE = "W"
    ATOMIC = "A"      # atomic read-modify-write

    def is_write(self) -> bool:
        return self in (AccessKind.WRITE, AccessKind.ATOMIC)


@dataclass
class Access:
    """One conditional access by the parametric thread of one flow."""

    kind: AccessKind
    obj: MemoryObject
    offset: Term                   # byte offset into obj
    size: int                      # bytes accessed
    cond: Term                     # flow condition ∧ local path guard
    flow_id: int
    bi_index: int                  # barrier interval ordinal
    instr_id: int                  # identity of the IR instruction
    loc: Optional[int] = None      # source line
    value: Optional[Term] = None   # stored value (writes)
    uid: int = field(default_factory=lambda: next(_access_counter))

    def describe(self) -> str:
        where = f"line {self.loc}" if self.loc else f"instr {self.instr_id}"
        return (f"{self.kind.value} {self.obj.name}"
                f"[{self.offset!r}] @{where} if {self.cond!r}")

    def dedupe_key(self) -> tuple:
        return (self.kind, id(self.obj), id(self.offset), self.size,
                id(self.cond), self.instr_id)


class AccessSet:
    """Accesses accumulated during one barrier interval by one flow."""

    def __init__(self) -> None:
        self.accesses: List[Access] = []
        self._seen: set = set()

    def add(self, access: Access) -> None:
        # dedupe by identity: flow splits hand children the parent's
        # Access objects, which must union back to one copy at the
        # barrier; distinct loop iterations are distinct accesses
        if access.uid in self._seen:
            return
        self._seen.add(access.uid)
        self.accesses.append(access)

    def extend(self, other: "AccessSet") -> None:
        for access in other.accesses:
            self.add(access)

    def reads(self) -> List[Access]:
        return [a for a in self.accesses if a.kind == AccessKind.READ]

    def writes(self) -> List[Access]:
        return [a for a in self.accesses if a.kind.is_write()]

    def by_object(self) -> Dict[MemoryObject, List[Access]]:
        out: Dict[MemoryObject, List[Access]] = {}
        for access in self.accesses:
            out.setdefault(access.obj, []).append(access)
        return out

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self):
        return iter(self.accesses)
