"""Control-flow graph analyses: dominators, post-dominators, natural loops.

The immediate post-dominator is what warp-mode execution reconverges at
(paper §IV-B, "the nearest common post-dominator"); natural loops feed the
loop-bound concretisation advice of §III-C.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .instrs import Br
from .module import BasicBlock, Function


class CFG:
    """Predecessor/successor maps plus derived analyses for one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.blocks = list(function.blocks)
        self.succs: Dict[BasicBlock, List[BasicBlock]] = {}
        self.preds: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in self.blocks:
            self.succs[block] = block.successors()
            self.preds.setdefault(block, [])
        for block in self.blocks:
            for succ in self.succs[block]:
                self.preds.setdefault(succ, []).append(block)
        self._idom: Optional[Dict[BasicBlock, Optional[BasicBlock]]] = None
        self._ipostdom: Optional[Dict[BasicBlock, Optional[BasicBlock]]] = None
        self._rpo: Optional[List[BasicBlock]] = None

    # ------------------------------------------------------------------

    def reverse_postorder(self) -> List[BasicBlock]:
        if self._rpo is not None:
            return self._rpo
        seen: Set[int] = set()
        order: List[BasicBlock] = []

        def dfs(block: BasicBlock) -> None:
            stack = [(block, iter(self.succs[block]))]
            seen.add(id(block))
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if id(succ) not in seen:
                        seen.add(id(succ))
                        stack.append((succ, iter(self.succs[succ])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        dfs(self.function.entry)
        order.reverse()
        self._rpo = order
        return order

    # ------------------------------------------------------------------
    # dominators (Cooper-Harvey-Kennedy)
    # ------------------------------------------------------------------

    def idom(self) -> Dict[BasicBlock, Optional[BasicBlock]]:
        if self._idom is not None:
            return self._idom
        rpo = self.reverse_postorder()
        index = {id(b): i for i, b in enumerate(rpo)}
        entry = self.function.entry
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[id(a)] > index[id(b)]:
                    a = idom[a]  # type: ignore[assignment]
                while index[id(b)] > index[id(a)]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                preds = [p for p in self.preds[block]
                         if p in idom and id(p) in index]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = intersect(new_idom, p)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        idom[entry] = None
        self._idom = idom
        return idom

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        idom = self.idom()
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = idom.get(node)
        return False

    def dominance_frontiers(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """DF(b): blocks where b's dominance ends (phi placement points)."""
        idom = self.idom()
        df: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.blocks}
        for block in self.blocks:
            preds = [p for p in self.preds[block] if p in idom or p is self.function.entry]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not idom.get(block):
                    df[runner].add(block)
                    runner = idom.get(runner)
        return df

    # ------------------------------------------------------------------
    # post-dominators (on the reverse CFG, with a virtual exit)
    # ------------------------------------------------------------------

    def ipostdom(self) -> Dict[BasicBlock, Optional[BasicBlock]]:
        """Immediate post-dominator of each block (None for exits)."""
        if self._ipostdom is not None:
            return self._ipostdom
        exits = [b for b in self.blocks if not self.succs[b]]
        # postorder on the reverse CFG from the virtual exit
        seen: Set[int] = set()
        order: List[BasicBlock] = []

        def dfs(block: BasicBlock) -> None:
            stack = [(block, iter(self.preds[block]))]
            seen.add(id(block))
            while stack:
                node, it = stack[-1]
                advanced = False
                for p in it:
                    if id(p) not in seen:
                        seen.add(id(p))
                        stack.append((p, iter(self.preds[p])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        for e in exits:
            if id(e) not in seen:
                dfs(e)
        order.reverse()  # reverse postorder of reverse CFG
        index = {id(b): i for i, b in enumerate(order)}

        VIRTUAL_EXIT = object()
        ipdom: Dict[object, object] = {}
        for e in exits:
            ipdom[e] = VIRTUAL_EXIT
        ipdom[VIRTUAL_EXIT] = VIRTUAL_EXIT

        def intersect(a: object, b: object) -> object:
            def idx(x: object) -> int:
                return -1 if x is VIRTUAL_EXIT else index[id(x)]
            while a is not b:
                while idx(a) > idx(b):
                    a = ipdom[a]
                while idx(b) > idx(a):
                    b = ipdom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in order:
                rsuccs: List[object] = list(self.succs[block]) or [VIRTUAL_EXIT]
                avail = [s for s in rsuccs if s in ipdom or s is VIRTUAL_EXIT]
                if block in exits:
                    continue
                if not avail:
                    continue
                new = avail[0]
                for s in avail[1:]:
                    new = intersect(new, s)
                if ipdom.get(block) is not new:
                    ipdom[block] = new
                    changed = True

        result: Dict[BasicBlock, Optional[BasicBlock]] = {}
        for block in self.blocks:
            pd = ipdom.get(block)
            result[block] = None if pd is VIRTUAL_EXIT or pd is None else pd  # type: ignore[assignment]
        self._ipostdom = result
        return result

    def reconvergence_point(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Where warp-divergent branches out of ``block`` reconverge."""
        return self.ipostdom().get(block)

    # ------------------------------------------------------------------
    # natural loops
    # ------------------------------------------------------------------

    def back_edges(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        """(tail, header) pairs where header dominates tail."""
        edges = []
        for block in self.blocks:
            for succ in self.succs[block]:
                if self.dominates(succ, block):
                    edges.append((block, succ))
        return edges

    def natural_loops(self) -> List["Loop"]:
        loops: Dict[int, Loop] = {}
        for tail, header in self.back_edges():
            loop = loops.get(id(header))
            if loop is None:
                loop = Loop(header)
                loops[id(header)] = loop
            loop.add_tail(tail, self.preds)
        return list(loops.values())


class Loop:
    """A natural loop: header plus body blocks."""

    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: Set[BasicBlock] = {header}

    def add_tail(self, tail: BasicBlock,
                 preds: Dict[BasicBlock, List[BasicBlock]]) -> None:
        stack = [tail]
        while stack:
            node = stack.pop()
            if node in self.blocks:
                continue
            self.blocks.add(node)
            stack.extend(preds.get(node, []))

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def exit_condition_branches(self) -> List[Br]:
        """Conditional branches leaving the loop (candidate loop bounds)."""
        out = []
        for block in self.blocks:
            term = block.terminator
            if isinstance(term, Br):
                succs = term.successors()
                if any(s not in self.blocks for s in succs):
                    out.append(term)
        return out

    def __repr__(self) -> str:
        return f"<loop header={self.header.name} blocks={len(self.blocks)}>"
