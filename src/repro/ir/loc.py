"""Source locations for IR instructions.

``Instruction.loc`` started life as a bare line number, and everything
downstream leans on that: reports compare ``loc == 7``, JSON serialises
it as an int, bench signatures sort tuples containing it.  To carry the
column as well without breaking any of that, :class:`SourceLoc` *is* an
``int`` (the line) with the column riding along as an attribute.

Note: ``int`` subclasses cannot declare nonempty ``__slots__``, so the
column lives in the instance ``__dict__``.
"""
from __future__ import annotations


class SourceLoc(int):
    """A source position that compares, hashes, and serialises as its line.

    ``SourceLoc(8, 13) == 8`` is true; ``str(SourceLoc(8, 13))`` is
    ``"8:13"``.  Arithmetic decays to a plain ``int`` (the line).
    """

    def __new__(cls, line: int, col: int = 0) -> "SourceLoc":
        self = super().__new__(cls, int(line))
        self.col = int(col)
        return self

    @property
    def line(self) -> int:
        return int(self)

    def __str__(self) -> str:
        if self.col > 0:
            return f"{int(self)}:{self.col}"
        return int.__repr__(self)

    def __repr__(self) -> str:
        return f"SourceLoc({int(self)}, {self.col})"
