"""Module / Function / BasicBlock containers."""
from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional

from .instrs import Instruction, Phi
from .types import FunctionType, MemSpace, Type
from .values import Argument, GlobalVariable, Register


class BasicBlock:
    """A straight-line instruction sequence ending in a terminator."""

    def __init__(self, name: str, parent: "Function") -> None:
        self.name = name
        self.parent = parent
        self.instrs: List[Instruction] = []

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated():
            raise ValueError(f"block {self.name} already terminated")
        instr.parent = self
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]

    def phis(self) -> List[Phi]:
        return [i for i in self.instrs if isinstance(i, Phi)]

    def non_phi_instrs(self) -> List[Instruction]:
        return [i for i in self.instrs if not isinstance(i, Phi)]

    def __repr__(self) -> str:
        return f"<block {self.name}: {len(self.instrs)} instrs>"


class Function:
    """A kernel (``is_kernel=True``) or a ``__device__`` helper."""

    def __init__(self, name: str, fn_type: FunctionType,
                 arg_names: List[str], is_kernel: bool = False) -> None:
        self.name = name
        self.type = fn_type
        self.is_kernel = is_kernel
        self.args: List[Argument] = [
            Argument(arg_name, ty, i)
            for i, (arg_name, ty) in enumerate(zip(arg_names, fn_type.params))
        ]
        self.blocks: List[BasicBlock] = []
        self._name_counter = itertools.count()
        self._block_counter = itertools.count()

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, hint: str = "bb") -> BasicBlock:
        block = BasicBlock(f"{hint}.{next(self._block_counter)}", self)
        self.blocks.append(block)
        return block

    def new_register(self, type_: Type, hint: str = "r") -> Register:
        return Register(f"{hint}{next(self._name_counter)}", type_)

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instrs

    def verify(self) -> None:
        """Sanity checks: all blocks terminated, phi edges exist."""
        block_set = set(id(b) for b in self.blocks)
        for block in self.blocks:
            if not block.is_terminated():
                raise ValueError(
                    f"{self.name}: block {block.name} lacks a terminator")
            for succ in block.successors():
                if id(succ) not in block_set:
                    raise ValueError(
                        f"{self.name}: edge to foreign block {succ.name}")
            for phi in block.phis():
                for pred, _ in phi.incoming:
                    if id(pred) not in block_set:
                        raise ValueError(
                            f"{self.name}: phi references foreign block")

    def __repr__(self) -> str:
        kind = "kernel" if self.is_kernel else "device fn"
        return f"<{kind} {self.name}: {len(self.blocks)} blocks>"


class Module:
    """A compiled translation unit: functions plus module-level globals."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name}")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise ValueError(f"duplicate global {gv.name}")
        self.globals[gv.name] = gv
        return gv

    def kernels(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_kernel]

    def get_kernel(self, name: Optional[str] = None) -> Function:
        """Look up a kernel; with no name, expect exactly one kernel."""
        if name is not None:
            fn = self.functions.get(name)
            if fn is None or not fn.is_kernel:
                raise KeyError(f"no kernel named {name}")
            return fn
        kernels = self.kernels()
        if len(kernels) != 1:
            raise ValueError(
                f"module has {len(kernels)} kernels; specify a name")
        return kernels[0]

    def __repr__(self) -> str:
        return (f"<module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
