"""The instruction set (Fig. 3 of the paper, plus atomics and casts).

Every instruction carries:

* ``result`` — the defined :class:`Register` (or None),
* ``operands()`` — the used values, for generic data-flow passes,
* ``meta`` — a free-form annotation dict. The static analyzer writes the
  flow-merging hints here (``meta["skip_fork"]``, §V Example 1) which the
  symbolic executor reads during parametric execution.
* ``loc`` — source line for diagnostics and race reports.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .types import IntType, MemSpace, PointerType, Type, VOID
from .values import Register, Value


class Instruction:
    """Base class for all IR instructions."""

    __slots__ = ("result", "parent", "meta", "loc")

    def __init__(self, result: Optional[Register] = None) -> None:
        self.result = result
        self.parent = None          # BasicBlock, set on insertion
        self.meta: Dict[str, object] = {}
        self.loc: Optional[int] = None
        if result is not None:
            result.defining = self

    def operands(self) -> List[Value]:
        """Values read by this instruction (for use-def analyses)."""
        raise NotImplementedError

    def replace_operand(self, old: Value, new: Value) -> None:
        """Substitute a used value (needed by inlining and mem2reg)."""
        raise NotImplementedError

    def is_terminator(self) -> bool:
        return False

    @property
    def name(self) -> str:
        return type(self).__name__.lower()

    def _res(self) -> str:
        return f"{self.result.short()} = " if self.result else ""

    def __repr__(self) -> str:
        ops = ", ".join(v.short() for v in self.operands())
        return f"{self._res()}{self.name} {ops}"


class _SimpleOperands:
    """Mixin storing operands in a plain list ``self.ops``."""

    __slots__ = ()

    def operands(self) -> List[Value]:
        return list(self.ops)

    def replace_operand(self, old: Value, new: Value) -> None:
        self.ops = [new if v is old else v for v in self.ops]


# ---------------------------------------------------------------------------
# arithmetic / comparison
# ---------------------------------------------------------------------------

INT_BINOPS = frozenset({"add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
                        "and", "or", "xor", "shl", "lshr", "ashr"})
FLOAT_BINOPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})
ICMP_PREDS = frozenset({"eq", "ne", "ult", "ule", "ugt", "uge",
                        "slt", "sle", "sgt", "sge"})
FCMP_PREDS = frozenset({"oeq", "one", "olt", "ole", "ogt", "oge"})


class BinOp(_SimpleOperands, Instruction):
    """Integer/float binary arithmetic (Fig. 3 ``binop``)."""
    __slots__ = ("op", "ops")

    def __init__(self, result: Register, op: str, lhs: Value, rhs: Value) -> None:
        if op not in INT_BINOPS and op not in FLOAT_BINOPS:
            raise ValueError(f"unknown binop {op}")
        super().__init__(result)
        self.op = op
        self.ops = [lhs, rhs]

    @property
    def lhs(self) -> Value:
        return self.ops[0]

    @property
    def rhs(self) -> Value:
        return self.ops[1]

    def __repr__(self) -> str:
        return f"{self._res()}{self.op} {self.lhs.short()}, {self.rhs.short()}"


class ICmp(_SimpleOperands, Instruction):
    """Integer comparison producing an i1."""
    __slots__ = ("pred", "ops")

    def __init__(self, result: Register, pred: str, lhs: Value, rhs: Value) -> None:
        if pred not in ICMP_PREDS:
            raise ValueError(f"unknown icmp predicate {pred}")
        super().__init__(result)
        self.pred = pred
        self.ops = [lhs, rhs]

    @property
    def lhs(self) -> Value:
        return self.ops[0]

    @property
    def rhs(self) -> Value:
        return self.ops[1]

    def __repr__(self) -> str:
        return f"{self._res()}icmp {self.pred} {self.lhs.short()}, {self.rhs.short()}"


class FCmp(_SimpleOperands, Instruction):
    """Float comparison (opaque at runtime, see DESIGN.md)."""
    __slots__ = ("pred", "ops")

    def __init__(self, result: Register, pred: str, lhs: Value, rhs: Value) -> None:
        if pred not in FCMP_PREDS:
            raise ValueError(f"unknown fcmp predicate {pred}")
        super().__init__(result)
        self.pred = pred
        self.ops = [lhs, rhs]

    def __repr__(self) -> str:
        a, b = self.ops
        return f"{self._res()}fcmp {self.pred} {a.short()}, {b.short()}"


class Select(_SimpleOperands, Instruction):
    """Branch-free conditional value."""
    __slots__ = ("ops",)

    def __init__(self, result: Register, cond: Value, then: Value,
                 otherwise: Value) -> None:
        super().__init__(result)
        self.ops = [cond, then, otherwise]

    @property
    def cond(self) -> Value:
        return self.ops[0]


CAST_KINDS = frozenset({"zext", "sext", "trunc", "bitcast",
                        "uitofp", "sitofp", "fptoui", "fptosi",
                        "fpext", "fptrunc"})


class Cast(_SimpleOperands, Instruction):
    """Width/kind conversions (zext/sext/trunc/bitcast/fp*)."""
    __slots__ = ("kind", "ops")

    def __init__(self, result: Register, kind: str, value: Value,
                 to_type: Type) -> None:
        if kind not in CAST_KINDS:
            raise ValueError(f"unknown cast kind {kind}")
        super().__init__(result)
        self.kind = kind
        self.ops = [value]
        assert result.type == to_type

    @property
    def value(self) -> Value:
        return self.ops[0]

    def __repr__(self) -> str:
        return f"{self._res()}{self.kind} {self.value.short()} to {self.result.type!r}"


# ---------------------------------------------------------------------------
# memory
# ---------------------------------------------------------------------------

class Alloca(Instruction):
    """Stack allocation of a thread-local slot (pre-mem2reg locals)."""

    __slots__ = ("allocated_type", "count")

    def __init__(self, result: Register, allocated_type: Type,
                 count: int = 1) -> None:
        super().__init__(result)
        self.allocated_type = allocated_type
        self.count = count

    def operands(self) -> List[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def __repr__(self) -> str:
        return f"{self._res()}alloca {self.allocated_type!r} x {self.count}"


class Load(_SimpleOperands, Instruction):
    """Memory read through a typed pointer (Fig. 3 ``load``)."""
    __slots__ = ("ops",)

    def __init__(self, result: Register, pointer: Value) -> None:
        super().__init__(result)
        self.ops = [pointer]

    @property
    def pointer(self) -> Value:
        return self.ops[0]

    def __repr__(self) -> str:
        return f"{self._res()}load {self.pointer.short()}"


class Store(_SimpleOperands, Instruction):
    """Memory write through a typed pointer (Fig. 3 ``store``)."""
    __slots__ = ("ops",)

    def __init__(self, value: Value, pointer: Value) -> None:
        super().__init__(None)
        self.ops = [value, pointer]

    @property
    def value(self) -> Value:
        return self.ops[0]

    @property
    def pointer(self) -> Value:
        return self.ops[1]

    def __repr__(self) -> str:
        return f"store {self.value.short()}, {self.pointer.short()}"


class GEP(_SimpleOperands, Instruction):
    """Address arithmetic: ``result = base + index * sizeof(elem)``.

    Multi-dimensional indexing is lowered to explicit arithmetic by the
    front-end, so a single scaled index suffices (LLVM's getelementptr
    restricted to the patterns GPU kernels produce).
    """

    __slots__ = ("ops",)

    def __init__(self, result: Register, base: Value, index: Value) -> None:
        super().__init__(result)
        self.ops = [base, index]

    @property
    def base(self) -> Value:
        return self.ops[0]

    @property
    def index(self) -> Value:
        return self.ops[1]

    def elem_size(self) -> int:
        base_ty = self.base.type
        assert isinstance(base_ty, PointerType)
        return base_ty.pointee.size_bytes()

    def __repr__(self) -> str:
        return (f"{self._res()}getelptr {self.base.short()}, "
                f"{self.index.short()} x {self.elem_size()}")


ATOMIC_OPS = frozenset({"add", "sub", "min", "max", "umin", "umax",
                        "and", "or", "xor", "exch", "inc", "dec"})


class AtomicRMW(_SimpleOperands, Instruction):
    """Atomic read-modify-write; result is the *old* value (CUDA semantics)."""

    __slots__ = ("op", "ops")

    def __init__(self, result: Register, op: str, pointer: Value,
                 value: Value) -> None:
        if op not in ATOMIC_OPS:
            raise ValueError(f"unknown atomic op {op}")
        super().__init__(result)
        self.op = op
        self.ops = [pointer, value]

    @property
    def pointer(self) -> Value:
        return self.ops[0]

    @property
    def value(self) -> Value:
        return self.ops[1]

    def __repr__(self) -> str:
        return (f"{self._res()}atomic_{self.op} {self.pointer.short()}, "
                f"{self.value.short()}")


class AtomicCAS(_SimpleOperands, Instruction):
    """Compare-and-swap; result is the old value."""
    __slots__ = ("ops",)

    def __init__(self, result: Register, pointer: Value, expected: Value,
                 new_value: Value) -> None:
        super().__init__(result)
        self.ops = [pointer, expected, new_value]

    @property
    def pointer(self) -> Value:
        return self.ops[0]

    def __repr__(self) -> str:
        p, e, n = self.ops
        return f"{self._res()}atomic_cas {p.short()}, {e.short()}, {n.short()}"


# ---------------------------------------------------------------------------
# control flow
# ---------------------------------------------------------------------------

class Phi(Instruction):
    """SSA join (Fig. 3 ``phi``)."""
    __slots__ = ("incoming",)

    def __init__(self, result: Register,
                 incoming: Optional[List[Tuple["BasicBlock", Value]]] = None) -> None:
        super().__init__(result)
        self.incoming: List[Tuple[object, Value]] = list(incoming or [])

    def add_incoming(self, block: object, value: Value) -> None:
        self.incoming.append((block, value))

    def operands(self) -> List[Value]:
        return [v for _, v in self.incoming]

    def replace_operand(self, old: Value, new: Value) -> None:
        self.incoming = [(b, new if v is old else v) for b, v in self.incoming]

    def __repr__(self) -> str:
        inner = ", ".join(f"[{getattr(b, 'name', b)}, {v.short()}]"
                          for b, v in self.incoming)
        return f"{self._res()}phi {inner}"


class Br(_SimpleOperands, Instruction):
    """Conditional branch."""

    __slots__ = ("ops", "then_block", "else_block")

    def __init__(self, cond: Value, then_block: object, else_block: object) -> None:
        super().__init__(None)
        self.ops = [cond]
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Value:
        return self.ops[0]

    def is_terminator(self) -> bool:
        return True

    def successors(self) -> List[object]:
        return [self.then_block, self.else_block]

    def __repr__(self) -> str:
        return (f"br {self.cond.short()} {self.then_block.name} "
                f"{self.else_block.name}")


class Jump(Instruction):
    """Unconditional branch (Fig. 3 ``br lab``)."""
    __slots__ = ("target",)

    def __init__(self, target: object) -> None:
        super().__init__(None)
        self.target = target

    def operands(self) -> List[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def is_terminator(self) -> bool:
        return True

    def successors(self) -> List[object]:
        return [self.target]

    def __repr__(self) -> str:
        return f"br {self.target.name}"


class Ret(_SimpleOperands, Instruction):
    """Function return."""
    __slots__ = ("ops",)

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(None)
        self.ops = [value] if value is not None else []

    @property
    def value(self) -> Optional[Value]:
        return self.ops[0] if self.ops else None

    def is_terminator(self) -> bool:
        return True

    def successors(self) -> List[object]:
        return []

    def __repr__(self) -> str:
        return f"ret {self.value.short()}" if self.ops else "ret"


class Call(_SimpleOperands, Instruction):
    """Direct call to a device function or intrinsic (by name)."""

    __slots__ = ("callee", "ops")

    def __init__(self, result: Optional[Register], callee: str,
                 args: Sequence[Value]) -> None:
        super().__init__(result)
        self.callee = callee
        self.ops = list(args)

    def __repr__(self) -> str:
        inner = ", ".join(v.short() for v in self.ops)
        ret = f"{self.result.type!r} " if self.result is not None else ""
        return f"{self._res()}call {ret}{self.callee}({inner})"


class Sync(Instruction):
    """``__syncthreads()`` — ends the current barrier interval."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(None)

    def operands(self) -> List[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def __repr__(self) -> str:
        return "syncthreads"
