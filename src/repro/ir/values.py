"""IR values: constants, virtual registers, arguments, globals."""
from __future__ import annotations

from typing import Optional

from .types import ArrayType, MemSpace, PointerType, Type


class Value:
    """Base class for anything an instruction can take as an operand."""

    __slots__ = ("type",)

    def __init__(self, type_: Type) -> None:
        self.type = type_

    def short(self) -> str:
        """Operand-position rendering (e.g. ``%r3`` or ``42``)."""
        raise NotImplementedError


class Constant(Value):
    """An integer (or float-bit-pattern) literal."""

    __slots__ = ("value",)

    def __init__(self, value: int, type_: Type) -> None:
        super().__init__(type_)
        self.value = int(value)

    def short(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value}: {self.type!r})"


class Register(Value):
    """A virtual register (SSA name once mem2reg has run)."""

    __slots__ = ("name", "defining")

    def __init__(self, name: str, type_: Type) -> None:
        super().__init__(type_)
        self.name = name
        self.defining = None  # set to the defining Instruction by the builder

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"%{self.name}: {self.type!r}"


class Argument(Value):
    """A kernel/function parameter. ``index`` is its position."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, type_: Type, index: int) -> None:
        super().__init__(type_)
        self.name = name
        self.index = index

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"arg %{self.name}: {self.type!r}"


class GlobalVariable(Value):
    """A module-level variable, e.g. a ``__shared__`` array.

    Its value is a pointer to the underlying storage; ``space`` says which
    memory it lives in (races are checked on SHARED/GLOBAL objects).
    """

    __slots__ = ("name", "space", "storage_type")

    def __init__(self, name: str, storage_type: Type, space: MemSpace) -> None:
        super().__init__(PointerType(
            storage_type.elem if isinstance(storage_type, ArrayType)
            else storage_type, space))
        self.name = name
        self.space = space
        self.storage_type = storage_type

    @property
    def size_bytes(self) -> int:
        return self.storage_type.size_bytes()

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"@{self.name}: {self.storage_type!r} [{self.space.value}]"


class BuiltinValue(Value):
    """A CUDA built-in (tid.x, bid.y, bdim.x, gdim.z, warp size...).

    These are the *parametric* values: the executor maps them to symbolic
    variables shared by all threads of a flow.
    """

    __slots__ = ("name",)

    def __init__(self, name: str, type_: Type) -> None:
        super().__init__(type_)
        self.name = name

    def short(self) -> str:
        return f"${self.name}"

    def __repr__(self) -> str:
        return f"${self.name}: {self.type!r}"
