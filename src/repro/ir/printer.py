"""Textual dump of modules/functions (diagnostics and golden tests)."""
from __future__ import annotations

from .module import Function, Module


def function_to_str(fn: Function) -> str:
    """Render one function as text (parser-compatible)."""
    lines = []
    kind = "kernel" if fn.is_kernel else "device"
    args = ", ".join(f"{a.type!r} %{a.name}" for a in fn.args)
    lines.append(f"{kind} {fn.type.ret!r} @{fn.name}({args}) {{")
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instrs:
            meta = ""
            if instr.meta:
                tags = ",".join(sorted(f"{k}" for k, v in instr.meta.items() if v))
                if tags:
                    meta = f"  ; [{tags}]"
            lines.append(f"  {instr!r}{meta}")
    lines.append("}")
    return "\n".join(lines)


def module_to_str(module: Module) -> str:
    """Render a whole module as text (parser-compatible)."""
    parts = [f"; module {module.name}"]
    for gv in module.globals.values():
        parts.append(f"{gv!r}")
    for fn in module.functions.values():
        parts.append(function_to_str(fn))
    return "\n\n".join(parts)
