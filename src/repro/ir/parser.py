"""Textual IR parser — round-trips :mod:`repro.ir.printer` output.

Lets tests and tools author IR directly, and guarantees the printed form
is a faithful serialisation (the round-trip property is tested). Only
the printer's grammar is accepted; this is a development substrate, not
a general assembler.
"""
from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instrs import (
    CAST_KINDS, FCMP_PREDS, FLOAT_BINOPS, GEP, ICMP_PREDS, INT_BINOPS,
    Alloca, AtomicCAS, AtomicRMW, BinOp, Br, Call, Cast, FCmp, ICmp,
    Instruction, Jump, Load, Phi, Ret, Select, Store, Sync, ATOMIC_OPS,
)
from .module import BasicBlock, Function, Module
from .types import (
    ArrayType, F32, F64, FunctionType, I1, IntType, MemSpace, PointerType,
    Type, VOID,
)
from .values import Argument, BuiltinValue, Constant, GlobalVariable, Register


class IRParseError(Exception):
    """Malformed textual IR with the offending line."""
    def __init__(self, message: str, line_no: int, line: str = "") -> None:
        super().__init__(f"line {line_no}: {message}"
                         + (f"  [{line.strip()}]" if line else ""))


# -- types -------------------------------------------------------------

_INT_RE = re.compile(r"([iu])(\d+)$")


def parse_type(text: str) -> Type:
    """Parse one printed type (``i32``, ``float*{global}``, ``[64 x i32]``)."""
    text = text.strip()
    if text.endswith("}") and "*{" in text:
        base, _, space = text.rpartition("*{")
        return PointerType(parse_type(base), MemSpace(space[:-1]))
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1]
        count_text, _, elem_text = inner.partition(" x ")
        return ArrayType(parse_type(elem_text), int(count_text))
    if text == "void":
        return VOID
    if text == "float":
        return F32
    if text == "double":
        return F64
    m = _INT_RE.match(text)
    if m:
        return IntType(int(m.group(2)), signed=(m.group(1) == "i"))
    raise ValueError(f"unknown type {text!r}")


# -- module ------------------------------------------------------------

_GLOBAL_RE = re.compile(
    r"@([\w.]+):\s*(.+?)\s*\[(local|shared|global)\]\s*$")
_FUNC_RE = re.compile(
    r"(kernel|device)\s+(.+?)\s+@([\w.]+)\((.*)\)\s*\{\s*$")
_BLOCK_RE = re.compile(r"^([\w.][\w.]*):\s*$")


class _FunctionParser:
    def __init__(self, module: Module, fn: Function) -> None:
        self.module = module
        self.fn = fn
        self.regs: Dict[str, Register] = {}
        self.blocks: Dict[str, BasicBlock] = {}
        #: (fixups) placeholder blocks referenced before definition
        self.pending: List[Tuple[Instruction, str, str]] = []
        self.args = {a.name: a for a in fn.args}
        self.order: List[str] = []   # block definition order

    def block(self, name: str) -> BasicBlock:
        b = self.blocks.get(name)
        if b is None:
            b = BasicBlock(name, self.fn)
            self.blocks[name] = b
        return b

    def reg(self, name: str, type_: Optional[Type] = None) -> Register:
        r = self.regs.get(name)
        if r is None:
            r = Register(name, type_ if type_ is not None else IntType(32))
            self.regs[name] = r
        elif type_ is not None:
            r.type = type_
        return r

    def value(self, text: str, hint: Optional[Type] = None):
        text = text.strip()
        if text.startswith("%"):
            name = text[1:]
            if name in self.args:
                return self.args[name]
            return self.reg(name, None if name in self.regs else hint)
        if text.startswith("@"):
            gv = self.module.globals.get(text[1:])
            if gv is None:
                raise ValueError(f"unknown global {text}")
            return gv
        if text.startswith("$"):
            return BuiltinValue(text[1:], IntType(32, signed=False))
        if text in ("true", "false"):
            return Constant(1 if text == "true" else 0, I1)
        value = int(text, 0)
        return Constant(value, hint if isinstance(hint, IntType)
                        else IntType(32))


def _split_args(text: str) -> List[str]:
    """Split on commas not inside brackets."""
    parts, depth, cur = [], 0, ""
    for ch in text:
        if ch in "[({":
            depth += 1
        elif ch in "])}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    if cur.strip():
        parts.append(cur)
    return [p.strip() for p in parts]


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse a printed module back into IR objects."""
    module = Module(name)
    lines = text.split("\n")
    i = 0
    n = len(lines)
    while i < n:
        raw = lines[i]
        line = raw.split(";", 1)[0].strip()
        i += 1
        if not line:
            continue
        m = _GLOBAL_RE.match(line)
        if m:
            gname, type_text, space = m.groups()
            module.add_global(GlobalVariable(
                gname, parse_type(type_text), MemSpace(space)))
            continue
        m = _FUNC_RE.match(line)
        if m:
            kind, ret_text, fname, args_text = m.groups()
            arg_names, arg_types = [], []
            for part in _split_args(args_text):
                if not part:
                    continue
                type_text, _, aname = part.rpartition(" %")
                arg_names.append(aname)
                arg_types.append(parse_type(type_text))
            fn = Function(fname,
                          FunctionType(parse_type(ret_text),
                                       tuple(arg_types)),
                          arg_names, is_kernel=(kind == "kernel"))
            module.add_function(fn)
            i = _parse_body(module, fn, lines, i)
            continue
        raise IRParseError("unrecognised top-level construct", i, raw)
    return module


def _parse_body(module: Module, fn: Function, lines: List[str],
                start: int) -> int:
    fp = _FunctionParser(module, fn)
    current: Optional[BasicBlock] = None
    i = start
    while i < len(lines):
        raw = lines[i]
        line = raw.split(";", 1)[0].strip()
        i += 1
        if not line:
            continue
        if line == "}":
            fn.blocks.extend(
                b for name, b in fp.blocks.items()
                if b not in fn.blocks)
            # preserve first-seen order
            fn.blocks.sort(key=lambda b: fp.order.index(b.name)
                           if b.name in fp.order else 1 << 30)
            fn.verify()
            return i
        m = _BLOCK_RE.match(line)
        if m:
            current = fp.block(m.group(1))
            if m.group(1) not in fp.order:
                fp.order.append(m.group(1))
            continue
        if current is None:
            raise IRParseError("instruction outside block", i, raw)
        instr = _parse_instr(fp, line, i, raw)
        # restore printed meta tags:  instr  ; [tag1,tag2]
        _, _, comment = raw.partition(";")
        m_tags = re.search(r"\[([\w,]+)\]", comment)
        if m_tags:
            for tag in m_tags.group(1).split(","):
                instr.meta[tag] = True
        instr.parent = current
        current.instrs.append(instr)
    raise IRParseError("unexpected end of input (missing '}')", i)


def _parse_instr(fp: _FunctionParser, line: str, line_no: int,
                 raw: str) -> Instruction:
    result_name = None
    body = line
    if line.startswith("%"):
        head, _, body = line.partition(" = ")
        result_name = head[1:].strip()
        body = body.strip()

    opcode, _, rest = body.partition(" ")
    rest = rest.strip()

    def res(type_: Type) -> Register:
        assert result_name is not None, f"{opcode} needs a result"
        return fp.reg(result_name, type_)

    if opcode == "syncthreads":
        return Sync()
    if opcode == "ret":
        return Ret(fp.value(rest) if rest else None)
    if opcode == "br":
        parts = rest.split()
        if len(parts) == 1:
            return Jump(fp.block(parts[0]))
        cond, then_name, else_name = parts
        return Br(fp.value(cond, I1), fp.block(then_name),
                  fp.block(else_name))
    if opcode in INT_BINOPS or opcode in FLOAT_BINOPS:
        a_text, b_text = _split_args(rest)
        a = fp.value(a_text)
        b = fp.value(b_text, hint=getattr(a, "type", None))
        if isinstance(a, Constant) and not isinstance(b, Constant):
            a = fp.value(a_text, hint=b.type)
        ty = F32 if opcode in FLOAT_BINOPS else \
            (a.type if not isinstance(a, Constant) or
             isinstance(b, Constant) else b.type)
        return BinOp(res(ty), opcode, a, b)
    if opcode == "icmp":
        pred, _, args = rest.partition(" ")
        a_text, b_text = _split_args(args)
        a = fp.value(a_text)
        b = fp.value(b_text, hint=getattr(a, "type", None))
        return ICmp(res(I1), pred, a, b)
    if opcode == "fcmp":
        pred, _, args = rest.partition(" ")
        a_text, b_text = _split_args(args)
        return FCmp(res(I1), pred, fp.value(a_text, F32),
                    fp.value(b_text, F32))
    if opcode == "select":
        c_text, a_text, b_text = _split_args(rest)
        a = fp.value(a_text)
        b = fp.value(b_text, hint=getattr(a, "type", None))
        ty = a.type if not isinstance(a, Constant) else b.type
        return Select(res(ty), fp.value(c_text, I1), a, b)
    if opcode in CAST_KINDS:
        value_text, _, type_text = rest.partition(" to ")
        target = parse_type(type_text)
        return Cast(res(target), opcode, fp.value(value_text), target)
    if opcode == "alloca":
        type_text, _, count_text = rest.rpartition(" x ")
        allocated = parse_type(type_text)
        return Alloca(res(PointerType(allocated, MemSpace.LOCAL)),
                      allocated, int(count_text))
    if opcode == "load":
        pointer = fp.value(rest)
        pt = pointer.type
        pointee = pt.pointee if isinstance(pt, PointerType) else IntType(32)
        return Load(res(pointee), pointer)
    if opcode == "store":
        value_text, pointer_text = _split_args(rest)
        pointer = fp.value(pointer_text)
        hint = pointer.type.pointee \
            if isinstance(pointer.type, PointerType) else None
        return Store(fp.value(value_text, hint), pointer)
    if opcode == "getelptr":
        base_text, index_part = _split_args(rest)
        index_text, _, _size = index_part.rpartition(" x ")
        base = fp.value(base_text)
        return GEP(res(base.type), base, fp.value(index_text))
    if opcode == "phi":
        incoming = []
        ty: Optional[Type] = None
        for pair in re.findall(r"\[([^,\]]+),\s*([^\]]+)\]", rest):
            block_name, value_text = pair
            value = fp.value(value_text.strip())
            if not isinstance(value, Constant) and ty is None:
                ty = value.type
            incoming.append((fp.block(block_name.strip()), value))
        phi = Phi(res(ty if ty is not None else IntType(32)))
        for block, value in incoming:
            phi.add_incoming(block, value)
        return phi
    if opcode == "call":
        m = re.match(r"(?:(.+?)\s+)?([\w.]+)\((.*)\)$", rest)
        if m is None:
            raise IRParseError("malformed call", line_no, raw)
        type_text, callee, args_text = m.groups()
        args = [fp.value(a) for a in _split_args(args_text)]
        if result_name is None:
            return Call(None, callee, args)
        return Call(res(parse_type(type_text or "i32")), callee, args)
    if opcode.startswith("atomic_"):
        op = opcode[len("atomic_"):]
        parts = _split_args(rest)
        pointer = fp.value(parts[0])
        pointee = pointer.type.pointee \
            if isinstance(pointer.type, PointerType) else IntType(32)
        if op == "cas":
            return AtomicCAS(res(pointee), pointer,
                             fp.value(parts[1], pointee),
                             fp.value(parts[2], pointee))
        if op in ATOMIC_OPS:
            return AtomicRMW(res(pointee), op, pointer,
                             fp.value(parts[1], pointee))
    raise IRParseError(f"unknown instruction {opcode!r}", line_no, raw)
