"""The IR type system.

Mirrors the LLVM types the paper's Fig. 3 bytecode needs: fixed-width
integers, floats (carried as opaque bit patterns — see DESIGN.md), pointers
tagged with a GPU memory space, and sized arrays.
"""
from __future__ import annotations

from enum import Enum
from functools import lru_cache
from typing import Optional, Tuple


class MemSpace(Enum):
    """GPU memory spaces; races are checked in SHARED and GLOBAL."""

    LOCAL = "local"      # registers / thread-private stack
    SHARED = "shared"    # per-block __shared__ memory
    GLOBAL = "global"    # device global memory (kernel pointer args)

    def is_shared_between_threads(self) -> bool:
        return self in (MemSpace.SHARED, MemSpace.GLOBAL)


class Type:
    """Base class for IR types."""

    __slots__ = ()

    def size_bytes(self) -> int:
        raise NotImplementedError

    def is_int(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)


class VoidType(Type):
    """The unit type of void functions."""
    __slots__ = ()
    _instance: Optional["VoidType"] = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def size_bytes(self) -> int:
        raise TypeError("void has no size")


class IntType(Type):
    """``iN``; ``signed`` records the C-level signedness for div/rem/cmp."""

    __slots__ = ("width", "signed")

    def __init__(self, width: int, signed: bool = True) -> None:
        self.width = width
        self.signed = signed

    def __repr__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.width}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, IntType) and other.width == self.width
                and other.signed == self.signed)

    def __hash__(self) -> int:
        return hash(("int", self.width, self.signed))

    def size_bytes(self) -> int:
        return max(1, self.width // 8)


class FloatType(Type):
    """``float``/``double``, represented at runtime as opaque bit patterns."""

    __slots__ = ("width",)

    def __init__(self, width: int = 32) -> None:
        self.width = width

    def __repr__(self) -> str:
        return "float" if self.width == 32 else "double"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("float", self.width))

    def size_bytes(self) -> int:
        return self.width // 8


class PointerType(Type):
    """Pointer into a specific GPU memory space."""
    __slots__ = ("pointee", "space")

    def __init__(self, pointee: Type, space: MemSpace = MemSpace.GLOBAL) -> None:
        self.pointee = pointee
        self.space = space

    def __repr__(self) -> str:
        return f"{self.pointee!r}*{{{self.space.value}}}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PointerType) and other.pointee == self.pointee
                and other.space == self.space)

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee, self.space))

    def size_bytes(self) -> int:
        return 8


class ArrayType(Type):
    """Fixed-count array (shared buffers, local arrays)."""
    __slots__ = ("elem", "count")

    def __init__(self, elem: Type, count: int) -> None:
        self.elem = elem
        self.count = count

    def __repr__(self) -> str:
        return f"[{self.count} x {self.elem!r}]"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ArrayType) and other.elem == self.elem
                and other.count == self.count)

    def __hash__(self) -> int:
        return hash(("array", self.elem, self.count))

    def size_bytes(self) -> int:
        return self.elem.size_bytes() * self.count


class FunctionType(Type):
    """Return type plus parameter types."""
    __slots__ = ("ret", "params")

    def __init__(self, ret: Type, params: Tuple[Type, ...]) -> None:
        self.ret = ret
        self.params = tuple(params)

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.params)
        return f"{self.ret!r}({inner})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FunctionType) and other.ret == self.ret
                and other.params == self.params)

    def __hash__(self) -> int:
        return hash(("fn", self.ret, self.params))

    def size_bytes(self) -> int:
        raise TypeError("function type has no size")


VOID = VoidType()
I1 = IntType(1, signed=False)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
U8 = IntType(8, signed=False)
U16 = IntType(16, signed=False)
U32 = IntType(32, signed=False)
U64 = IntType(64, signed=False)
F32 = FloatType(32)
F64 = FloatType(64)


def ptr(pointee: Type, space: MemSpace = MemSpace.GLOBAL) -> PointerType:
    """Shorthand PointerType constructor."""
    return PointerType(pointee, space)
