"""LLVM-like typed IR implementing the paper's Fig. 3 bytecode."""
from .types import (
    ArrayType, F32, F64, FloatType, FunctionType, I1, I8, I16, I32, I64,
    IntType, MemSpace, PointerType, Type, U8, U16, U32, U64, VOID, VoidType,
    ptr,
)
from .values import (
    Argument, BuiltinValue, Constant, GlobalVariable, Register, Value,
)
from .instrs import (
    ATOMIC_OPS, CAST_KINDS, FCMP_PREDS, FLOAT_BINOPS, GEP, ICMP_PREDS,
    INT_BINOPS, Alloca, AtomicCAS, AtomicRMW, BinOp, Br, Call, Cast, FCmp,
    ICmp, Instruction, Jump, Load, Phi, Ret, Select, Store, Sync,
)
from .loc import SourceLoc
from .module import BasicBlock, Function, Module
from .builder import IRBuilder
from .cfg import CFG, Loop
from .printer import function_to_str, module_to_str
from .parser import IRParseError, parse_module, parse_type

__all__ = [
    "ArrayType", "F32", "F64", "FloatType", "FunctionType", "I1", "I8",
    "I16", "I32", "I64", "IntType", "MemSpace", "PointerType", "Type",
    "U8", "U16", "U32", "U64", "VOID", "VoidType", "ptr",
    "Argument", "BuiltinValue", "Constant", "GlobalVariable", "Register",
    "Value", "ATOMIC_OPS", "CAST_KINDS", "FCMP_PREDS", "FLOAT_BINOPS",
    "GEP", "ICMP_PREDS", "INT_BINOPS", "Alloca", "AtomicCAS", "AtomicRMW",
    "BinOp", "Br", "Call", "Cast", "FCmp", "ICmp", "Instruction", "Jump",
    "Load", "Phi", "Ret", "Select", "Store", "Sync", "SourceLoc",
    "BasicBlock",
    "Function", "Module", "IRBuilder", "CFG", "Loop", "function_to_str",
    "module_to_str", "IRParseError", "parse_module", "parse_type",
]
