"""Convenience builder for emitting IR (used by codegen and by tests)."""
from __future__ import annotations

from typing import List, Optional, Sequence

from .instrs import (
    GEP, Alloca, AtomicCAS, AtomicRMW, BinOp, Br, Call, Cast, FCmp, ICmp,
    Instruction, Jump, Load, Phi, Ret, Select, Store, Sync,
)
from .module import BasicBlock, Function
from .types import I1, IntType, PointerType, Type
from .values import Constant, Register, Value


class IRBuilder:
    """Positions at a block and emits instructions with auto-named registers."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.block: Optional[BasicBlock] = None
        self.current_loc: Optional[int] = None

    def position_at(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, instr: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("builder not positioned at a block")
        instr.loc = self.current_loc
        self.block.append(instr)
        return instr

    def _reg(self, type_: Type, hint: str = "r") -> Register:
        return self.function.new_register(type_, hint)

    # -- arithmetic -----------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value,
              type_: Optional[Type] = None) -> Register:
        result = self._reg(type_ or lhs.type)
        self._emit(BinOp(result, op, lhs, rhs))
        return result

    def icmp(self, pred: str, lhs: Value, rhs: Value) -> Register:
        result = self._reg(I1, "c")
        self._emit(ICmp(result, pred, lhs, rhs))
        return result

    def fcmp(self, pred: str, lhs: Value, rhs: Value) -> Register:
        result = self._reg(I1, "c")
        self._emit(FCmp(result, pred, lhs, rhs))
        return result

    def select(self, cond: Value, then: Value, otherwise: Value) -> Register:
        result = self._reg(then.type)
        self._emit(Select(result, cond, then, otherwise))
        return result

    def cast(self, kind: str, value: Value, to_type: Type) -> Register:
        result = self._reg(to_type)
        self._emit(Cast(result, kind, value, to_type))
        return result

    # -- memory ----------------------------------------------------------

    def alloca(self, allocated: Type, count: int = 1,
               hint: str = "slot") -> Register:
        from .types import MemSpace, ptr
        result = self._reg(ptr(allocated, MemSpace.LOCAL), hint)
        self._emit(Alloca(result, allocated, count))
        return result

    def load(self, pointer: Value) -> Register:
        pt = pointer.type
        assert isinstance(pt, PointerType), f"load from non-pointer {pt!r}"
        result = self._reg(pt.pointee)
        self._emit(Load(result, pointer))
        return result

    def store(self, value: Value, pointer: Value) -> None:
        self._emit(Store(value, pointer))

    def gep(self, base: Value, index: Value) -> Register:
        result = self._reg(base.type, "p")
        self._emit(GEP(result, base, index))
        return result

    def atomic_rmw(self, op: str, pointer: Value, value: Value) -> Register:
        pt = pointer.type
        assert isinstance(pt, PointerType)
        result = self._reg(pt.pointee, "old")
        self._emit(AtomicRMW(result, op, pointer, value))
        return result

    def atomic_cas(self, pointer: Value, expected: Value,
                   new_value: Value) -> Register:
        pt = pointer.type
        assert isinstance(pt, PointerType)
        result = self._reg(pt.pointee, "old")
        self._emit(AtomicCAS(result, pointer, expected, new_value))
        return result

    # -- control flow ------------------------------------------------------

    def br(self, cond: Value, then_block: BasicBlock,
           else_block: BasicBlock) -> None:
        self._emit(Br(cond, then_block, else_block))

    def jump(self, target: BasicBlock) -> None:
        self._emit(Jump(target))

    def ret(self, value: Optional[Value] = None) -> None:
        self._emit(Ret(value))

    def phi(self, type_: Type, hint: str = "phi") -> Phi:
        result = self._reg(type_, hint)
        return self._emit(Phi(result))  # type: ignore[return-value]

    def call(self, callee: str, args: Sequence[Value],
             ret_type: Optional[Type] = None) -> Optional[Register]:
        result = self._reg(ret_type, "call") if ret_type is not None \
            and not ret_type.is_void() else None
        self._emit(Call(result, callee, list(args)))
        return result

    def sync(self) -> None:
        self._emit(Sync())

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def const(value: int, type_: Type) -> Constant:
        return Constant(value, type_)
