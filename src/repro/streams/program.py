"""Stream programs: ordered launches + synchronisation over one module.

A :class:`StreamProgram` models what a host program does between kernel
launches — the part of a GPU application the single-launch checker
cannot see. It is an ordered list of steps over the kernels of *one*
multi-kernel MiniCUDA source:

* :class:`Launch` — enqueue one kernel launch on a stream, binding
  pointer parameters to named device buffers and scalars to values;
* :class:`SyncOp` — a synchronisation edge: ``device_sync``
  (cudaDeviceSynchronize), ``stream_sync`` (cudaStreamSynchronize),
  ``event_record`` / ``event_wait`` (cudaEventRecord /
  cudaStreamWaitEvent).

Same-stream launches are FIFO-ordered by construction; everything else
is concurrent unless a sync edge orders it (:mod:`repro.streams.hb`).

Programs are plain data: they round-trip through ``to_dict`` /
``from_dict`` (the service ships them inside a ``stream`` JobSpec) and
load from a small JSON launch-script format (:func:`load_stream_script`)::

    {
      "name": "pipeline",
      "source_file": "kernels.cu",          // or inline "source": "..."
      "buffers": {"a": 64, "b": 64},        // name -> element count
      "steps": [
        {"launch": "produce", "block": 64, "stream": 0,
         "args": {"a": "a"}},
        {"sync": "device"},
        {"launch": "consume", "block": 64, "stream": 1,
         "args": {"a": "a", "b": "b"}}
      ]
    }

Sync step forms: ``{"sync": "device"}``, ``{"sync": "stream",
"stream": N}``, ``{"sync": "event_record", "event": "e", "stream": N}``,
``{"sync": "event_wait", "event": "e", "stream": N}``.
"""
from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

Dim3 = Tuple[int, int, int]

#: the synchronisation edge kinds a program may contain
SYNC_KINDS = ("device_sync", "stream_sync", "event_record", "event_wait")


def _dim3(value) -> Dim3:
    if isinstance(value, int):
        return (value, 1, 1)
    t = tuple(int(v) for v in value)
    while len(t) < 3:
        t += (1,)
    if len(t) != 3 or any(v < 1 for v in t):
        raise ValueError(f"bad dim3 {value!r}")
    return t  # type: ignore[return-value]


class StreamProgramError(ValueError):
    """A launch script that can never run: unknown kernel, unbound
    buffer, malformed step. Raised by loading and :meth:`validate`."""


@dataclass
class Launch:
    """One kernel launch step."""

    kernel: str
    grid_dim: Dim3 = (1, 1, 1)
    block_dim: Dim3 = (64, 1, 1)
    stream: int = 0
    #: pointer parameter name -> program buffer name
    args: Dict[str, str] = field(default_factory=dict)
    #: concrete values for scalar parameters
    scalar_values: Dict[str, int] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        self.grid_dim = _dim3(self.grid_dim)
        self.block_dim = _dim3(self.block_dim)

    @property
    def name(self) -> str:
        return self.label or self.kernel

    def to_dict(self) -> dict:
        return {"launch": self.kernel,
                "grid": list(self.grid_dim),
                "block": list(self.block_dim),
                "stream": self.stream,
                "args": dict(self.args),
                "scalars": dict(self.scalar_values),
                "label": self.label}


@dataclass
class SyncOp:
    """One synchronisation step (see :data:`SYNC_KINDS`)."""

    kind: str
    stream: Optional[int] = None
    event: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in SYNC_KINDS:
            raise StreamProgramError(
                f"unknown sync kind {self.kind!r} "
                f"(expected one of {', '.join(SYNC_KINDS)})")
        if self.kind == "stream_sync" and self.stream is None:
            raise StreamProgramError("stream_sync needs a stream")
        if self.kind.startswith("event_"):
            if not self.event:
                raise StreamProgramError(f"{self.kind} needs an event")
            if self.stream is None:
                raise StreamProgramError(f"{self.kind} needs a stream")

    def to_dict(self) -> dict:
        kind = {"device_sync": "device", "stream_sync": "stream"}.get(
            self.kind, self.kind)
        out: dict = {"sync": kind}
        if self.stream is not None:
            out["stream"] = self.stream
        if self.event is not None:
            out["event"] = self.event
        return out


Step = Union[Launch, SyncOp]


@dataclass
class StreamProgram:
    """An ordered multi-kernel launch sequence over shared buffers."""

    name: str
    source: str
    #: device buffer name -> element count
    buffers: Dict[str, int] = field(default_factory=dict)
    steps: List[Step] = field(default_factory=list)

    def launches(self) -> List[Launch]:
        """The launch steps, in program (and launch-index) order."""
        return [s for s in self.steps if isinstance(s, Launch)]

    # -- validation ----------------------------------------------------

    def validate(self, module=None) -> None:
        """Reject programs that can never run
        (:class:`StreamProgramError`): no launches, undeclared buffers,
        kernels/parameters the compiled module does not have."""
        if not isinstance(self.source, str) or not self.source.strip():
            raise StreamProgramError(
                f"stream program {self.name!r}: source is empty")
        launches = self.launches()
        if not launches:
            raise StreamProgramError(
                f"stream program {self.name!r} has no launches")
        for buf, count in self.buffers.items():
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 1:
                raise StreamProgramError(
                    f"buffer {buf!r} element count {count!r} must be a "
                    f"positive integer")
        for launch in launches:
            for param, buf in launch.args.items():
                if buf not in self.buffers:
                    raise StreamProgramError(
                        f"launch {launch.name!r} binds {param!r} to "
                        f"undeclared buffer {buf!r}")
        if module is None:
            from ..frontend import compile_source
            from ..passes import standard_pipeline
            module = compile_source(self.source)
            standard_pipeline().run(module)
        from .. import ir
        for launch in launches:
            try:
                kernel = module.get_kernel(launch.kernel)
            except (KeyError, ValueError) as exc:
                raise StreamProgramError(
                    f"launch {launch.name!r}: {exc.args[0] if exc.args else exc}"
                ) from None
            pointer_params = {a.name for a in kernel.args
                              if isinstance(a.type, ir.PointerType)}
            for param in launch.args:
                if param not in pointer_params:
                    raise StreamProgramError(
                        f"launch {launch.name!r}: kernel "
                        f"{launch.kernel!r} has no pointer parameter "
                        f"{param!r}")

    # -- serialisation -------------------------------------------------

    def to_dict(self, include_source: bool = True) -> dict:
        out = {"name": self.name,
               "buffers": dict(self.buffers),
               "steps": [step.to_dict() for step in self.steps]}
        if include_source:
            out["source"] = self.source
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "StreamProgram":
        if not isinstance(data, dict):
            raise StreamProgramError(
                f"stream program: expected an object, got "
                f"{type(data).__name__}")
        source = data.get("source")
        if not isinstance(source, str):
            raise StreamProgramError("stream program needs a 'source'")
        steps = [parse_step(s) for s in data.get("steps") or []]
        return cls(name=data.get("name") or "stream",
                   source=source,
                   buffers=dict(data.get("buffers") or {}),
                   steps=steps)


def parse_step(data: dict) -> Step:
    """One launch-script step dict → :class:`Launch` / :class:`SyncOp`."""
    if not isinstance(data, dict):
        raise StreamProgramError(
            f"bad step {data!r}: expected an object")
    if "launch" in data:
        try:
            return Launch(
                kernel=data["launch"],
                grid_dim=_dim3(data.get("grid", 1)),
                block_dim=_dim3(data.get("block", 64)),
                stream=int(data.get("stream", 0)),
                args=dict(data.get("args") or {}),
                scalar_values=dict(data.get("scalars") or {}),
                label=data.get("label"))
        except (TypeError, ValueError) as exc:
            raise StreamProgramError(
                f"bad launch step {data!r}: {exc}") from None
    if "sync" in data:
        kind = {"device": "device_sync", "stream": "stream_sync"}.get(
            data["sync"], data["sync"])
        stream = data.get("stream")
        return SyncOp(kind=kind,
                      stream=int(stream) if stream is not None else None,
                      event=data.get("event"))
    raise StreamProgramError(
        f"bad step {data!r}: needs 'launch' or 'sync'")


def load_stream_script(path: str) -> StreamProgram:
    """Load a JSON launch script; ``source_file`` paths resolve relative
    to the script's own directory."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise StreamProgramError(
            f"cannot read {path!r}: {exc.strerror or exc}") from None
    except ValueError as exc:
        raise StreamProgramError(
            f"{path!r} is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise StreamProgramError(
            f"{path!r}: launch script must be a JSON object")
    if "source" not in data and "source_file" in data:
        source_path = os.path.join(os.path.dirname(os.path.abspath(path)),
                                   data["source_file"])
        try:
            with open(source_path, "r", encoding="utf-8") as fh:
                data = dict(data, source=fh.read())
        except OSError as exc:
            raise StreamProgramError(
                f"cannot read source_file {source_path!r}: "
                f"{exc.strerror or exc}") from None
    data.setdefault("name", os.path.splitext(os.path.basename(path))[0])
    return StreamProgram.from_dict(data)
