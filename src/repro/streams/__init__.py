"""Stream checking: inter-launch race detection over multi-kernel
programs.

* :mod:`repro.streams.program` — the :class:`StreamProgram` model
  (launches + sync edges) and the JSON launch-script loader;
* :mod:`repro.streams.hb` — the happens-before DAG over launches;
* :mod:`repro.streams.checker` — per-launch SESA runs plus the
  cross-launch solver, merged into one :class:`StreamReport`.
"""
from .checker import (
    InterLaunchRace, LaunchOutcome, StreamChecker, StreamReport,
    StreamStats, check_stream, launch_fingerprint,
)
from .hb import HappensBefore
from .program import (
    Launch, StreamProgram, StreamProgramError, SyncOp, load_stream_script,
)

__all__ = [
    "HappensBefore",
    "InterLaunchRace",
    "Launch",
    "LaunchOutcome",
    "StreamChecker",
    "StreamProgram",
    "StreamProgramError",
    "StreamReport",
    "StreamStats",
    "SyncOp",
    "check_stream",
    "launch_fingerprint",
    "load_stream_script",
]
