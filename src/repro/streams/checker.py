"""Inter-launch race checking over a :class:`StreamProgram`.

The single-launch engine already answers "can two threads of *this*
launch collide?" — this module lifts the same machinery one level up,
to "can two threads of two *different, HB-unordered* launches collide
on a shared buffer?". The paper's parametric trick carries over intact:
two symbolic threads stand in for the full cross product of the two
launches' thread spaces, each drawn from its *own* launch configuration
(grids and blocks may differ per launch).

Per launch, the existing :meth:`SESA.check` pipeline runs unchanged —
static tier, pruning, incremental sessions and warm start all apply —
producing the per-launch verdict *and* the global-memory access record
the cross-launch pass consumes. Each launch's accesses are then keyed
by the *program buffer* its pointer parameters are bound to, and every
HB-unordered launch pair is checked buffer by buffer with the same
affine/interval/solver stack :mod:`repro.sym.races` uses:

* the two sides are instantiated with per-launch substitutions
  (``tid.x`` → ``tid.x!L3``), each bounded by its own launch extents —
  no different-thread constraint, because threads of distinct launches
  are always distinct actors (even equal coordinates race);
* interval footprints and affine stride separation prune provably
  disjoint pairs before any solving (both are sound for independent
  sides);
* surviving pairs are solved on one incremental
  :class:`~repro.smt.solver.SolverSession` per launch pair (the
  preamble is just the two bound sets), with the cross-query memo;
* atomic-vs-atomic pairs are skipped and write/write collisions that
  provably store equal values are classified benign, mirroring the
  intra-launch rules.

Caching is per *launch*, not per program: a launch's fingerprint hashes
only its own kernel's IR (plus module globals), its launch geometry and
the verdict-relevant flags — so re-checking a program after editing one
kernel replays every untouched launch from the
:class:`~repro.service.cache.ResultCache` and re-solves only the edited
one. Fully-checked launch *pairs* are cached the same way.

Known approximation: buffer *contents* are not tracked across launches.
A read's symbolic value is an uninterpreted function of its parameter
name, independent of what an earlier launch wrote — over-approximating
the set of reachable values, the sound direction for race existence
(address arithmetic rarely depends on ordered producer values; when it
does, a witness may name infeasible input contents).
"""
from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import ir
from .. import __version__ as TOOL_VERSION
from ..core.sesa import SESA
from ..frontend import compile_source
from ..ir import function_to_str
from ..passes import standard_pipeline
from ..smt import (
    CheckResult, Model, QueryMemo, Solver, SolverSession, Substitution,
    TRUE, Term, mk_and, mk_bv, mk_bv_var, mk_eq, mk_ne, mk_ult, simplify,
)
from ..smt.affine import affine_decompose, stride_separated
from ..smt.interval import Interval, IntervalAnalysis, byte_footprint
from ..smt.terms import mk_add
from ..sym import Executor, LaunchConfig
from ..sym.access import Access, AccessKind
from ..sym.memory import contains_havoc
from .hb import HappensBefore
from .program import Launch, StreamProgram

#: cache-miss sentinel (None is a legitimate cached value)
_MISS = object()

_AXIS = {"x": 0, "y": 1, "z": 2}


def launch_fingerprint(module: ir.Module, launch: Launch,
                       config: LaunchConfig) -> str:
    """Cache key for one launch's verdict.

    Hashes the launch's *own* kernel IR slice (plus module globals —
    any kernel may touch them), the launch geometry, and every flag
    that can change the verdict. Deliberately excluded: the wall-clock
    budget (a non-timed-out budgeted verdict equals the unbudgeted
    one; timed-out verdicts are never cached) and ``solver_cache_dir``
    (a pure accelerator).
    """
    kernel = module.get_kernel(launch.kernel)
    globals_slice = [f"{gv.name} {gv.storage_type!r} {gv.space}"
                     for gv in module.globals.values()]
    ir_slice = "\n".join(globals_slice + [function_to_str(kernel)])
    material = json.dumps({
        "kind": "stream_launch",
        "ir": ir_slice,
        "kernel": launch.kernel,
        "grid_dim": list(config.grid_dim),
        "block_dim": list(config.block_dim),
        "scalar_values": sorted(config.scalar_values.items()),
        "array_sizes": sorted(config.array_sizes.items()),
        "check_oob": config.check_oob,
        "incremental_solving": config.incremental_solving,
        "pair_pruning": config.pair_pruning,
        "static_tier": config.static_tier,
        "tool_version": TOOL_VERSION,
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class InterLaunchRace:
    """A cross-launch race on a shared buffer, with a launch-pair
    witness. Plain JSON-able data throughout — pair verdicts round-trip
    through the result cache."""

    kind: str                    # "WW", "RW", "Atomic/W", "Atomic/R"
    buffer: str                  # the shared program buffer
    launch1: int                 # launch-sequence indices
    launch2: int
    kernel1: str
    kernel2: str
    param1: str                  # pointer parameter bound on each side
    param2: str
    loc1: Optional[int] = None   # source lines of the two accesses
    loc2: Optional[int] = None
    benign: bool = False
    #: {"thread1": [x,y,z], "block1": [...], "thread2": ..., "block2":
    #: ..., "inputs": {...}} — coordinates are per-launch
    witness: Dict[str, object] = field(default_factory=dict)

    def witness_str(self) -> str:
        w = self.witness
        out = (f"launch {self.launch1} block {tuple(w.get('block1', ()))} "
               f"thread {tuple(w.get('thread1', ()))} vs "
               f"launch {self.launch2} block {tuple(w.get('block2', ()))} "
               f"thread {tuple(w.get('thread2', ()))}")
        inputs = w.get("inputs") or {}
        if inputs:
            ins = ", ".join(f"{k}={v}" for k, v in sorted(inputs.items()))
            out += f" with {ins}"
        return out

    def describe(self) -> str:
        flavour = " (benign)" if self.benign else ""
        return (f"{self.kind} inter-launch race{flavour} on "
                f"{self.buffer}: launch {self.launch1} "
                f"({self.kernel1}:{self.param1}, line {self.loc1}) vs "
                f"launch {self.launch2} "
                f"({self.kernel2}:{self.param2}, line {self.loc2}) — "
                f"{self.witness_str()}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "InterLaunchRace":
        return cls(**{k: data[k] for k in
                      ("kind", "buffer", "launch1", "launch2", "kernel1",
                       "kernel2", "param1", "param2", "loc1", "loc2",
                       "benign", "witness") if k in data})


@dataclass
class StreamStats:
    """Counters for one stream check (the stream-level analogue of
    :class:`~repro.sym.races.CheckStats`)."""

    launches: int = 0
    launch_cache_hits: int = 0     # launches replayed from the cache
    unordered_pairs: int = 0       # HB-unordered launch pairs
    pairs_considered: int = 0      # cross-launch access pairs seen
    pruned_pairs: int = 0          # discharged by footprint/stride
    pair_cache_hits: int = 0       # launch pairs replayed from the cache
    queries: int = 0               # SAT queries issued
    by_memo: int = 0               # queries answered from the memo
    sessions_created: int = 0      # one per solved launch pair
    inter_launch_races: int = 0
    execute_seconds: float = 0.0   # per-launch pipeline wall clock
    solve_seconds: float = 0.0     # inter-launch solving wall clock
    elapsed_seconds: float = 0.0


@dataclass
class LaunchOutcome:
    """One launch's slot in the merged report."""

    index: int
    label: str
    kernel: str
    stream: int
    grid_dim: Tuple[int, int, int]
    block_dim: Tuple[int, int, int]
    cached: bool
    fingerprint: str
    #: the launch's :meth:`AnalysisReport.to_dict` payload
    verdict: dict
    elapsed_seconds: float = 0.0

    @property
    def racy(self) -> bool:
        v = self.verdict
        return bool(any(not r.get("benign") for r in v.get("races", ()))
                    or v.get("oobs") or v.get("assertion_failures"))

    def to_dict(self) -> dict:
        return {"index": self.index, "label": self.label,
                "kernel": self.kernel, "stream": self.stream,
                "grid_dim": list(self.grid_dim),
                "block_dim": list(self.block_dim),
                "cached": self.cached, "fingerprint": self.fingerprint,
                "racy": self.racy,
                "elapsed_seconds": self.elapsed_seconds}


class StreamReport:
    """Merged per-launch + inter-launch verdict for one program."""

    def __init__(self, program: StreamProgram,
                 launches: List[LaunchOutcome],
                 inter_launch_races: List[InterLaunchRace],
                 hb: HappensBefore, stats: StreamStats,
                 warnings: Optional[List[str]] = None,
                 timed_out: bool = False,
                 elapsed_seconds: float = 0.0) -> None:
        self.program = program
        self.launches = launches
        self.inter_launch_races = inter_launch_races
        self.hb = hb
        self.stats = stats
        self.warnings = list(warnings or ())
        self.timed_out = timed_out
        self.elapsed_seconds = elapsed_seconds

    # ------------------------------------------------------------------

    @property
    def has_issues(self) -> bool:
        return (any(not r.benign for r in self.inter_launch_races)
                or any(lo.racy for lo in self.launches))

    def to_dict(self) -> dict:
        """Merged verdict, shaped like :meth:`AnalysisReport.to_dict`
        at the top level (races/oobs/assertion_failures/timed_out) so
        every existing consumer — ``JobResult.has_issues``, the batch
        report, the CLI ``--json`` contract — works unchanged, plus a
        ``stream`` sub-document with the launch-level detail."""
        races: List[dict] = []
        oobs: List[dict] = []
        assertion_failures: List[dict] = []
        for lo in self.launches:
            tag = {"launch": lo.index, "kernel": lo.kernel,
                   "inter_launch": False}
            races.extend(dict(r, **tag)
                         for r in lo.verdict.get("races", ()))
            oobs.extend(dict(o, **tag)
                        for o in lo.verdict.get("oobs", ()))
            assertion_failures.extend(
                dict(a, **tag)
                for a in lo.verdict.get("assertion_failures", ()))
        for r in self.inter_launch_races:
            races.append({
                "kind": r.kind, "object": r.buffer, "benign": r.benign,
                "inter_launch": True,
                "launches": [r.launch1, r.launch2],
                "kernels": [r.kernel1, r.kernel2],
                "params": [r.param1, r.param2],
                "lines": [r.loc1, r.loc2],
                "witness": r.witness_str(),
                "witness_data": dict(r.witness, launch1=r.launch1,
                                     launch2=r.launch2),
            })
        timed_out = self.timed_out or any(
            lo.verdict.get("timed_out") for lo in self.launches)
        return {
            "kernel": self.program.name,
            "engine": "stream",
            "races": races,
            "oobs": oobs,
            "assertion_failures": assertion_failures,
            "timed_out": timed_out,
            "warnings": list(self.warnings),
            "check_stats": asdict(self.stats),
            "elapsed_seconds": self.elapsed_seconds,
            "stream": {
                "program": self.program.to_dict(include_source=False),
                "launches": [lo.to_dict() for lo in self.launches],
                "hb": self.hb.to_dict(),
                "stats": asdict(self.stats),
                "inter_launch_races": [r.to_dict()
                                       for r in self.inter_launch_races],
            },
        }

    def summary(self) -> str:
        lines = [f"=== stream program {self.program.name!r}: "
                 f"{len(self.launches)} launches, "
                 f"{self.stats.unordered_pairs} unordered pairs ==="]
        for lo in self.launches:
            state = "RACY" if lo.racy else "safe"
            cached = " [cached]" if lo.cached else ""
            lines.append(
                f"  [{lo.index}] {lo.label} <<<{lo.grid_dim}, "
                f"{lo.block_dim}>>> stream {lo.stream}: {state}{cached}")
        for race in self.inter_launch_races:
            lines.append(f"  INTER-LAUNCH {race.describe()}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        n_inter = sum(1 for r in self.inter_launch_races if not r.benign)
        n_launch = sum(1 for lo in self.launches if lo.racy)
        if self.timed_out:
            lines.append("verdict: UNKNOWN (timed out)")
        elif self.has_issues:
            lines.append(f"verdict: RACY ({n_inter} inter-launch, "
                         f"{n_launch} racy launches)")
        else:
            lines.append("verdict: SAFE")
        return "\n".join(lines)


class _LaunchSide:
    """One launch's instantiated view for cross-launch solving: its
    access record keyed by program buffer, the per-side substitution
    (``tid.x`` → ``tid.x!L<i>``), its bound conjuncts, and its own
    interval analysis for pruning."""

    def __init__(self, index: int, launch: Launch,
                 config: LaunchConfig, result) -> None:
        self.index = index
        self.launch = launch
        self.config = config
        suffix = f"!L{index}"
        theta: Dict[Term, Term] = {}
        self.vars: Dict[str, Term] = {}
        self.bounds: List[Term] = []
        ia_bounds: Dict[str, Interval] = {}
        for name, var in result.env.thread_vars().items():
            fresh = mk_bv_var(f"{name}{suffix}", 32)
            theta[var] = fresh
            self.vars[name] = fresh
            i = _AXIS[name.split(".")[1]]
            extent = config.block_dim[i] if name.startswith("tid") \
                else config.grid_dim[i]
            self.bounds.append(mk_ult(fresh, mk_bv(extent, 32)))
            ia_bounds[name] = Interval(0, max(0, extent - 1), 32)
        # summary index variables: per-side copies, like the thread
        # coordinates (their k < count bounds ride in the access guards)
        for bi_set in result.bi_access_sets:
            for access in bi_set:
                if access.summary is not None:
                    k = access.summary.index_var
                    if k not in theta:
                        fresh = mk_bv_var(f"{k.name}{suffix}", k.width)
                        theta[k] = fresh
                        self.vars[k.name] = fresh
                        ia_bounds[k.name] = Interval(
                            0, access.summary.count - 1, k.width)
        self.subst = Substitution(theta)
        self._ia = IntervalAnalysis(ia_bounds)
        self._foot_cache: Dict[Tuple[int, int], Optional[tuple]] = {}
        self._affine_cache: Dict[int, object] = {}
        # global accesses grouped by the program buffer the launch
        # binds them to (deduped: summaries repeat across intervals)
        self.by_buffer: Dict[str, List[Access]] = {}
        seen: Set[int] = set()
        for access in result.all_accesses():
            obj = access.obj
            if obj.space != ir.MemSpace.GLOBAL or id(access) in seen:
                continue
            buf = launch.args.get(obj.name)
            if buf is None:
                continue
            seen.add(id(access))
            self.by_buffer.setdefault(buf, []).append(access)

    def footprint(self, access: Access) -> Optional[Tuple[int, int]]:
        """Sound byte range under *this* launch's variable bounds."""
        key = (id(access.offset), access.size)
        hit = self._foot_cache.get(key, _MISS)
        if hit is not _MISS:
            return hit
        foot = byte_footprint(self._ia.interval_of(access.offset),
                              access.size)
        self._foot_cache[key] = foot
        return foot

    def affine_of(self, offset: Term):
        form = self._affine_cache.get(id(offset), _MISS)
        if form is _MISS:
            form = affine_decompose(offset)
            self._affine_cache[id(offset)] = form
        return form


class StreamChecker:
    """Checks one :class:`StreamProgram` end to end.

    Per-launch verdicts come from :meth:`SESA.check` (cache-replayed
    when a :class:`~repro.service.cache.ResultCache` is supplied);
    inter-launch pairs are solved here. :meth:`check` returns the
    merged :class:`StreamReport`.
    """

    def __init__(self, program: StreamProgram,
                 cache=None, telemetry=None,
                 time_budget_seconds: Optional[float] = None,
                 incremental: bool = True, pruning: bool = True,
                 static_tier: bool = True, check_oob: bool = True,
                 solver_cache_dir: Optional[str] = None,
                 solver_budget: Optional[int] = 200_000,
                 max_reports: int = 16) -> None:
        self.program = program
        self.cache = cache
        if telemetry is None:
            from ..service.telemetry import Telemetry
            telemetry = Telemetry()
        self.telemetry = telemetry
        self.time_budget_seconds = time_budget_seconds
        self.incremental = incremental
        self.pruning = pruning
        self.static_tier = static_tier
        self.check_oob = check_oob
        self.solver_cache_dir = solver_cache_dir
        self.solver_budget = solver_budget
        self.max_reports = max_reports
        self.module = compile_source(program.source)
        standard_pipeline().run(self.module)
        program.validate(self.module)
        self._sesa: Dict[str, SESA] = {}
        self.stats = StreamStats()
        self.warnings: List[str] = []
        self.timed_out = False
        self._deadline: Optional[float] = None
        self._sessions: Dict[Tuple[int, int], SolverSession] = {}
        self._memo = QueryMemo()

    # ------------------------------------------------------------------
    # per-launch pipeline
    # ------------------------------------------------------------------

    def _sesa_for(self, kernel_name: str) -> SESA:
        tool = self._sesa.get(kernel_name)
        if tool is None:
            tool = SESA(self.module, kernel_name)
            self._sesa[kernel_name] = tool
        return tool

    def _config_for(self, launch: Launch) -> LaunchConfig:
        config = LaunchConfig(
            grid_dim=launch.grid_dim, block_dim=launch.block_dim,
            scalar_values=dict(launch.scalar_values),
            array_sizes={param: self.program.buffers[buf]
                         for param, buf in launch.args.items()},
            check_oob=self.check_oob,
            incremental_solving=self.incremental,
            pair_pruning=self.pruning,
            static_tier=self.static_tier,
            solver_cache_dir=self.solver_cache_dir)
        if self._deadline is not None:
            # only under a stream-level budget: an unconditional
            # per-launch budget would force the static tier to bail
            config.time_budget_seconds = max(
                0.001, self._deadline - time.monotonic())
        return config

    def _run_launch(self, index: int, launch: Launch,
                    need_accesses: bool
                    ) -> Tuple[LaunchOutcome, Optional[_LaunchSide]]:
        start = time.perf_counter()
        sesa = self._sesa_for(launch.kernel)
        config = self._config_for(launch)
        fingerprint = launch_fingerprint(self.module, launch, config)
        payload = self.cache.get(fingerprint) \
            if self.cache is not None else None
        side = None
        if payload is not None:
            # cache hit: the verdict replays for free; the access
            # record (needed only for unordered pairs) is re-derived by
            # a solver-less executor run on the same deterministic path
            self.stats.launch_cache_hits += 1
            verdict = payload["verdict"]
            if need_accesses:
                if config.symbolic_inputs is None:
                    config.symbolic_inputs = sesa.inferred_symbolic_inputs()
                executor = Executor(sesa.module, sesa.kernel, config,
                                    mode="sesa",
                                    sink_value_ids=sesa.taint.sink_value_ids)
                side = _LaunchSide(index, launch, config, executor.run())
            cached = True
        else:
            report = sesa.check(config, solver_budget=self.solver_budget,
                                max_reports=self.max_reports)
            verdict = report.to_dict()
            if self.cache is not None and not verdict.get("timed_out"):
                # timed-out verdicts are partial — never cache them
                self.cache.put(fingerprint, {
                    "verdict": verdict,
                    "check_stats": verdict.get("check_stats")})
            if need_accesses and report.execution is not None:
                side = _LaunchSide(index, launch, config, report.execution)
            cached = False
        elapsed = time.perf_counter() - start
        self.stats.execute_seconds += elapsed
        outcome = LaunchOutcome(
            index=index, label=launch.name, kernel=launch.kernel,
            stream=launch.stream, grid_dim=launch.grid_dim,
            block_dim=launch.block_dim, cached=cached,
            fingerprint=fingerprint, verdict=verdict,
            elapsed_seconds=elapsed)
        self.telemetry.emit(
            "launch_finished", program=self.program.name, index=index,
            kernel=launch.kernel, stream=launch.stream, cached=cached,
            racy=outcome.racy, elapsed_seconds=round(elapsed, 6))
        return outcome, side

    # ------------------------------------------------------------------
    # inter-launch checking
    # ------------------------------------------------------------------

    def _out_of_time(self) -> bool:
        if self._deadline is not None \
                and time.monotonic() > self._deadline:
            self.timed_out = True
            return True
        return False

    def _pair_fingerprint(self, o1: LaunchOutcome, o2: LaunchOutcome
                          ) -> str:
        material = json.dumps({
            "kind": "stream_interlaunch",
            "fp1": o1.fingerprint, "fp2": o2.fingerprint,
            "args1": sorted(self.program.launches()[o1.index].args.items()),
            "args2": sorted(self.program.launches()[o2.index].args.items()),
            "tool_version": TOOL_VERSION,
        }, sort_keys=True)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _provably_disjoint(self, s1: _LaunchSide, a1: Access,
                           s2: _LaunchSide, a2: Access) -> bool:
        f1 = s1.footprint(a1)
        f2 = s2.footprint(a2)
        if f1 is not None and f2 is not None and \
                (f1[1] < f2[0] or f2[1] < f1[0]):
            return True
        if a1.size != a2.size:
            return False
        d1 = s1.affine_of(a1.offset)
        d2 = s2.affine_of(a2.offset)
        if d1 is None or d2 is None:
            return False
        return stride_separated(d1, d2, 32)

    def _overlap(self, s1: _LaunchSide, a1: Access,
                 s2: _LaunchSide, a2: Access) -> Term:
        addr1 = s1.subst(a1.offset)
        addr2 = s2.subst(a2.offset)
        if a1.size == a2.size:
            return mk_eq(addr1, addr2)
        b1 = mk_bv(a1.size, 32)
        b2 = mk_bv(a2.size, 32)
        return mk_and(
            mk_ult(addr1, mk_add(addr2, b2)),
            mk_ult(addr2, mk_add(addr1, b1)))

    def _solve(self, goal: Sequence[Term], preamble: Sequence[Term],
               skey: Tuple[int, int]) -> Optional[Model]:
        self.stats.queries += 1
        if not self.incremental:
            solver = Solver(conflict_budget=self.solver_budget,
                            deadline=self._deadline)
            solver.add(mk_and(*preamble, *goal))
            outcome = solver.check()
            if outcome == CheckResult.SAT:
                return solver.model()
            if outcome == CheckResult.UNKNOWN:
                self.timed_out = True
            return None
        canon = simplify(mk_and(*goal)) if goal else TRUE
        key = (skey, id(canon))
        hit = self._memo.get(key)
        if hit is not None:
            self.stats.by_memo += 1
            result, values = hit
            return Model(dict(values)) if result == CheckResult.SAT \
                else None
        session = self._sessions.get(skey)
        if session is None:
            session = SolverSession(list(preamble),
                                    conflict_budget=self.solver_budget,
                                    deadline=self._deadline)
            self._sessions[skey] = session
            self.stats.sessions_created += 1
        else:
            session.deadline = self._deadline
        outcome = session.check([canon] if canon is not TRUE else [])
        if outcome == CheckResult.SAT:
            model = session.model()
            self._memo.put(key, outcome, dict(model.values))
            return model
        if outcome == CheckResult.UNKNOWN:
            self.timed_out = True
            return None
        self._memo.put(key, outcome)
        return None

    def _classify_benign(self, s1: _LaunchSide, a1: Access,
                         s2: _LaunchSide, a2: Access,
                         goal: List[Term], preamble: List[Term],
                         skey: Tuple[int, int]) -> bool:
        if not (a1.kind.is_write() and a2.kind.is_write()
                and a1.value is not None and a2.value is not None):
            return False
        if contains_havoc(a1.value) or contains_havoc(a2.value):
            return False
        distinct = mk_ne(s1.subst(a1.value), s2.subst(a2.value))
        return self._solve(goal + [distinct], preamble, skey) is None

    def _witness(self, model: Model, s1: _LaunchSide,
                 s2: _LaunchSide) -> Dict[str, object]:
        def coords(side: _LaunchSide, prefix: str) -> List[int]:
            out = []
            for axis in ("x", "y", "z"):
                var = side.vars.get(f"{prefix}.{axis}")
                out.append(model.get(var.name, 0)
                           if var is not None else 0)
            return out

        inputs = {k: v for k, v in model.values.items() if "!" not in k}
        return {"thread1": coords(s1, "tid"), "block1": coords(s1, "bid"),
                "thread2": coords(s2, "tid"), "block2": coords(s2, "bid"),
                "inputs": inputs}

    def _race_kind(self, a1: Access, a2: Access) -> str:
        kind = "WW" if a1.kind.is_write() and a2.kind.is_write() else "RW"
        if AccessKind.ATOMIC in (a1.kind, a2.kind):
            kind = "Atomic/W" if kind == "WW" else "Atomic/R"
        return kind

    def _check_launch_pair(self, s1: _LaunchSide, s2: _LaunchSide,
                           races: List[InterLaunchRace]) -> List[dict]:
        """All inter-launch races between two HB-unordered launches;
        returns the pair's cacheable race payloads (appending live
        reports to *races*)."""
        skey = (s1.index, s2.index)
        preamble = s1.bounds + s2.bounds
        found: List[dict] = []
        reported: Set[tuple] = set()
        for buf in sorted(set(s1.by_buffer) & set(s2.by_buffer)):
            for a1 in s1.by_buffer[buf]:
                for a2 in s2.by_buffer[buf]:
                    if len(races) >= self.max_reports \
                            or self._out_of_time():
                        return found
                    if not (a1.kind.is_write() or a2.kind.is_write()):
                        continue
                    if a1.kind == AccessKind.ATOMIC \
                            and a2.kind == AccessKind.ATOMIC:
                        # atomic vs atomic on the same object never
                        # races, across launches exactly as within one
                        continue
                    self.stats.pairs_considered += 1
                    # one report per (buffer, line pair, kind): loop
                    # iterations of the same statement are the same bug
                    rkey = (buf, a1.loc, a2.loc, self._race_kind(a1, a2))
                    if rkey in reported:
                        continue
                    if self.pruning \
                            and self._provably_disjoint(s1, a1, s2, a2):
                        self.stats.pruned_pairs += 1
                        continue
                    goal = [s1.subst(a1.cond), s2.subst(a2.cond),
                            self._overlap(s1, a1, s2, a2)]
                    model = self._solve(goal, preamble, skey)
                    if model is None:
                        continue
                    benign = self._classify_benign(
                        s1, a1, s2, a2, goal, preamble, skey)
                    reported.add(rkey)
                    race = InterLaunchRace(
                        kind=rkey[3], buffer=buf,
                        launch1=s1.index, launch2=s2.index,
                        kernel1=s1.launch.kernel,
                        kernel2=s2.launch.kernel,
                        param1=a1.obj.name, param2=a2.obj.name,
                        loc1=int(a1.loc) if a1.loc is not None else None,
                        loc2=int(a2.loc) if a2.loc is not None else None,
                        benign=benign,
                        witness=self._witness(model, s1, s2))
                    races.append(race)
                    found.append(race.to_dict())
                    self.stats.inter_launch_races += 1
        return found

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def check(self) -> StreamReport:
        start = time.perf_counter()
        if self.time_budget_seconds is not None:
            self._deadline = time.monotonic() + self.time_budget_seconds
        launches = self.program.launches()
        hb = HappensBefore(self.program)
        unordered = hb.unordered_pairs()
        self.stats.launches = len(launches)
        self.stats.unordered_pairs = len(unordered)
        self.telemetry.emit(
            "stream_planned", program=self.program.name,
            launches=len(launches), unordered_pairs=len(unordered),
            kernels=sorted({l.kernel for l in launches}))
        needed = {i for pair in unordered for i in pair}
        outcomes: List[LaunchOutcome] = []
        sides: Dict[int, _LaunchSide] = {}
        for index, launch in enumerate(launches):
            outcome, side = self._run_launch(index, launch,
                                             need_accesses=index in needed)
            outcomes.append(outcome)
            if side is not None:
                sides[index] = side

        races: List[InterLaunchRace] = []
        t0 = time.perf_counter()
        for i, j in unordered:
            if len(races) >= self.max_reports or self._out_of_time():
                break
            s1, s2 = sides.get(i), sides.get(j)
            if s1 is None or s2 is None:
                self.warnings.append(
                    f"launch pair ({i}, {j}) not checked: missing "
                    f"execution record")
                self.timed_out = True
                continue
            pair_fp = self._pair_fingerprint(outcomes[i], outcomes[j])
            payload = self.cache.get(pair_fp) \
                if self.cache is not None else None
            if payload is not None:
                self.stats.pair_cache_hits += 1
                for data in payload.get("races", ()):
                    if len(races) >= self.max_reports:
                        break
                    races.append(InterLaunchRace.from_dict(data))
                    self.stats.inter_launch_races += 1
                continue
            was_timed_out = self.timed_out
            found = self._check_launch_pair(s1, s2, races)
            # only fully-checked pairs are cacheable: a budget cut or a
            # report cap mid-pair leaves the verdict partial
            if self.cache is not None \
                    and self.timed_out == was_timed_out \
                    and len(races) < self.max_reports:
                self.cache.put(pair_fp, {"races": found})
        self.stats.solve_seconds += time.perf_counter() - t0
        self.stats.elapsed_seconds = time.perf_counter() - start

        report = StreamReport(
            program=self.program, launches=outcomes,
            inter_launch_races=races, hb=hb, stats=self.stats,
            warnings=self.warnings, timed_out=self.timed_out,
            elapsed_seconds=self.stats.elapsed_seconds)
        self.telemetry.emit(
            "stream_merged", program=self.program.name,
            racy=report.has_issues,
            inter_launch_races=len(races),
            launch_cache_hits=self.stats.launch_cache_hits,
            pair_cache_hits=self.stats.pair_cache_hits,
            timed_out=report.to_dict()["timed_out"])
        return report


def check_stream(program: StreamProgram, **kwargs) -> StreamReport:
    """One-shot convenience: build a checker and run it."""
    return StreamChecker(program, **kwargs).check()
