"""Happens-before over launches: stream FIFO + sync edges, closed.

This is the stream-level analogue of the barrier-interval partition the
single-launch engine uses inside one kernel: instead of asking "which
accesses are separated by a ``__syncthreads()``", we ask "which
*launches* are separated by a device/stream/event synchronisation".
Launch pairs the DAG orders need no checking at all; only HB-unordered
pairs reach the inter-launch solver.

Edge sources (CUDA semantics, over-approximating concurrency — the
sound direction for a race checker):

* **stream FIFO** — launch *k* on stream *s* happens after every
  earlier launch on *s*;
* ``device_sync`` — everything enqueued so far happens before
  everything after (cudaDeviceSynchronize);
* ``stream_sync s`` — stream *s*'s work so far happens before
  everything after (cudaStreamSynchronize);
* ``event_record e on s`` / ``event_wait e on s'`` — *s*'s work up to
  the record happens before *s'*'s work after the wait
  (cudaEventRecord / cudaStreamWaitEvent). A wait on a never-recorded
  event is a no-op, exactly as in CUDA.
"""
from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .program import Launch, StreamProgram, SyncOp


class HappensBefore:
    """The happens-before DAG over a program's launches.

    ``ordered(i, j)`` answers whether launch *i* and launch *j*
    (launch-sequence indices) are ordered either way; everything is
    precomputed as reachability closures at construction, so queries
    are set lookups.
    """

    def __init__(self, program: StreamProgram) -> None:
        self.program = program
        self.launches: List[Launch] = program.launches()
        n = len(self.launches)
        #: direct predecessor edges, pred index -> launch index
        self.edges: List[Tuple[int, int]] = []
        # reach[j] = all launch indices that happen before launch j
        self._reach: List[Set[int]] = [set() for _ in range(n)]

        tails: Dict[int, int] = {}          # stream -> last launch index
        frontier: Dict[int, Set[int]] = {}  # stream -> forced predecessors
        global_frontier: Set[int] = set()   # forced predecessors of everyone
        events: Dict[str, Set[int]] = {}    # event -> captured frontier

        idx = 0
        for step in program.steps:
            if isinstance(step, Launch):
                preds = set(global_frontier)
                preds |= frontier.get(step.stream, set())
                if step.stream in tails:
                    preds.add(tails[step.stream])
                reach = set(preds)
                for p in preds:
                    reach |= self._reach[p]  # preds always have lower index
                self._reach[idx] = reach
                self.edges.extend((p, idx) for p in sorted(preds))
                tails[step.stream] = idx
                idx += 1
            elif isinstance(step, SyncOp):
                if step.kind == "device_sync":
                    global_frontier.update(tails.values())
                elif step.kind == "stream_sync":
                    if step.stream in tails:
                        global_frontier.add(tails[step.stream])
                elif step.kind == "event_record":
                    captured = set(global_frontier)
                    captured |= frontier.get(step.stream, set())
                    if step.stream in tails:
                        captured.add(tails[step.stream])
                    events[step.event] = captured
                elif step.kind == "event_wait":
                    # waiting on an event never recorded is a no-op
                    captured = events.get(step.event)
                    if captured:
                        frontier.setdefault(step.stream,
                                            set()).update(captured)

    # ------------------------------------------------------------------

    def ordered(self, i: int, j: int) -> bool:
        """True iff launches *i* and *j* are HB-ordered either way."""
        if i == j:
            return True
        lo, hi = (i, j) if i < j else (j, i)
        return lo in self._reach[hi]

    def unordered_pairs(self) -> List[Tuple[int, int]]:
        """All (i, j), i < j, the DAG does not order — the candidate
        inter-launch race pairs."""
        n = len(self.launches)
        return [(i, j) for j in range(n) for i in range(j)
                if i not in self._reach[j]]

    def predecessors(self, j: int) -> Set[int]:
        """Every launch index that happens before launch *j*."""
        return set(self._reach[j])

    def to_dict(self) -> dict:
        return {
            "launches": len(self.launches),
            "edges": [list(e) for e in self.edges],
            "unordered_pairs": [list(p) for p in self.unordered_pairs()],
        }
