"""Worker-side job execution.

:func:`execute_job` is the default job runner: it takes a *plain dict*
(a serialised :class:`~repro.service.jobs.JobSpec`), compiles the
kernel, runs the selected engine, and returns a plain-dict payload.
It never raises — an analysis failure comes back as an ``error``
payload so the scheduler can record it without losing the batch.

The function lives at module top level so worker processes can reach
it by import, and so tests can swap in their own runner (crashing,
hanging, flaky) to exercise the scheduler's fault handling.
"""
from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import asdict
from typing import Callable, Optional, Tuple

from .jobs import ENGINE_NAMES, JobSpec, JobStatus, JobValidationError

Runner = Callable[[dict], dict]


def _engine_class(name: str):
    from ..core import GKLEE, GKLEEp, SESA
    try:
        return {"sesa": SESA, "gkleep": GKLEEp, "gklee": GKLEE}[name]
    except KeyError:
        raise ValueError(f"unknown engine {name!r} "
                         f"(expected one of {ENGINE_NAMES})") from None


def execute_job(spec_dict: dict) -> dict:
    """Run one analysis job; always returns a result payload dict.

    Payload shape::

        {"status": "done"|"error", "verdict": {...}|None,
         "check_stats": {...}|None, "elapsed_seconds": float,
         "error": str|None}
    """
    start = time.perf_counter()
    try:
        spec = JobSpec.from_dict(spec_dict)
        spec.validate()
        if spec.kind == "stream":
            return _execute_stream_job(spec, start)
        engine_cls = _engine_class(spec.engine)
        tool = engine_cls.from_source(spec.source, spec.kernel_name)
        report = tool.check(spec.launch_config())
        if hasattr(tool, "inferred_symbolic_inputs"):      # SESA
            inputs = {"symbolic": len(tool.inferred_symbolic_inputs()),
                      "total": len(tool.taint.verdicts)}
        elif hasattr(tool, "default_symbolic_inputs"):     # GKLEE(p)
            n = len(tool.default_symbolic_inputs())
            inputs = {"symbolic": n, "total": n}
        else:
            inputs = None
        repair = None
        if spec.repair and spec.engine == "sesa" and report.has_races:
            from ..repair import repair_source
            outcome = repair_source(
                spec.source, config=spec.launch_config(),
                kernel_name=spec.kernel_name,
                time_budget_seconds=spec.time_budget_seconds)
            repair = outcome.to_dict()
        return {
            "status": JobStatus.DONE,
            "verdict": report.to_dict(),
            "check_stats": (asdict(report.check_stats)
                            if report.check_stats is not None else None),
            "inputs": inputs,
            "repair": repair,
            "elapsed_seconds": time.perf_counter() - start,
            "error": None,
        }
    except JobValidationError as exc:
        # malformed input, not an analysis failure: a clean one-line
        # error (no traceback — there is nothing to debug in the tool)
        # that the daemon records as a non-retryable ``failed`` job and
        # the CLI maps to exit code 2
        return {
            "status": JobStatus.ERROR,
            "verdict": None,
            "check_stats": None,
            "inputs": None,
            "repair": None,
            "elapsed_seconds": time.perf_counter() - start,
            "error": str(exc),
            "validation_error": True,
        }
    except Exception:
        return {
            "status": JobStatus.ERROR,
            "verdict": None,
            "check_stats": None,
            "inputs": None,
            "repair": None,
            "elapsed_seconds": time.perf_counter() - start,
            "error": traceback.format_exc(limit=8),
        }


def _execute_stream_job(spec: JobSpec, start: float) -> dict:
    """Run one ``stream`` job: a whole multi-launch program.

    The per-launch results are cached under ``solver_cache_dir`` (the
    scheduler/daemon share their verdict-cache tree through that field),
    so re-submitting a program with one edited kernel replays every
    untouched launch. Raises into :func:`execute_job`'s handlers on
    failure — a malformed program is a :class:`JobValidationError`-class
    input error, not a crash.
    """
    from dataclasses import asdict as dc_asdict

    from ..streams import StreamChecker, StreamProgram, StreamProgramError
    from .cache import ResultCache
    try:
        program = StreamProgram.from_dict(
            dict(spec.stream_program or {}, source=spec.source,
                 name=(spec.stream_program or {}).get("name")
                 or spec.job_id))
        cache = ResultCache(spec.solver_cache_dir) \
            if spec.solver_cache_dir else None
        checker = StreamChecker(
            program, cache=cache,
            time_budget_seconds=spec.time_budget_seconds,
            incremental=spec.incremental_solving,
            pruning=spec.pair_pruning,
            static_tier=spec.static_tier,
            check_oob=spec.check_oob,
            solver_cache_dir=spec.solver_cache_dir)
        report = checker.check()
    except StreamProgramError as exc:
        raise JobValidationError(
            f"invalid job spec {spec.job_id!r}: {exc}") from None
    return {
        "status": JobStatus.DONE,
        "verdict": report.to_dict(),
        "check_stats": dc_asdict(report.stats),
        "inputs": None,
        "repair": None,
        "elapsed_seconds": time.perf_counter() - start,
        "error": None,
    }


# ----------------------------------------------------------------------
# process isolation (shared by the batch scheduler and daemon workers)
# ----------------------------------------------------------------------

def _child_entry(conn, runner: Runner, spec_dict: dict) -> None:
    """Worker-process entry: run the job, ship the payload, exit."""
    try:
        payload = runner(spec_dict)
    except BaseException as exc:   # runner contract says it shouldn't raise
        payload = {"status": JobStatus.ERROR, "verdict": None,
                   "check_stats": None, "elapsed_seconds": 0.0,
                   "error": f"{type(exc).__name__}: {exc}"}
    try:
        conn.send(payload)
    except Exception:
        pass
    finally:
        conn.close()


def run_job_isolated(spec_dict: dict,
                     runner: Runner = execute_job,
                     timeout_seconds: Optional[float] = None,
                     ) -> Tuple[str, object]:
    """One job attempt in a fresh forked process.

    Returns ``('ok', payload_dict)``, ``('timeout', None)`` after a
    hard wall-clock kill, or ``('crash', exitcode)`` when the child
    died without delivering a payload. Both the batch
    :class:`~repro.service.scheduler.Scheduler` and the daemon
    :class:`~repro.service.daemon.worker.WorkerDaemon` build their
    fault handling on this single primitive.
    """
    parent_conn, child_conn = mp.Pipe(duplex=False)
    proc = mp.Process(target=_child_entry,
                      args=(child_conn, runner, spec_dict),
                      daemon=True)
    proc.start()
    child_conn.close()
    payload = None
    readable = False
    try:
        # poll(None) blocks until data or EOF — the no-timeout mode
        readable = parent_conn.poll(timeout_seconds)
        if readable:
            payload = parent_conn.recv()
    except (EOFError, OSError):
        payload = None   # pipe closed without a payload: child died
    finally:
        parent_conn.close()
    if payload is not None:
        proc.join(5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join()
        return "ok", payload
    if readable:
        # EOF before any payload — the child is gone (or going); join
        # *blocking* so we report its exit code, not a stale
        # is_alive() snapshot from the exit window
        proc.join()
        return "crash", proc.exitcode
    # poll timed out with the worker still running
    proc.terminate()
    proc.join()
    return "timeout", None


def run_job_inline(spec_dict: dict,
                   runner: Runner = execute_job) -> Tuple[str, object]:
    """In-thread fallback for environments without ``fork``: crashes
    are not contained and hard timeouts degrade to the engine's soft
    budget, but the (outcome, payload) contract is identical."""
    try:
        return "ok", runner(spec_dict)
    except BaseException as exc:
        return "ok", {"status": JobStatus.ERROR, "verdict": None,
                      "check_stats": None, "elapsed_seconds": 0.0,
                      "error": f"{type(exc).__name__}: {exc}"}
