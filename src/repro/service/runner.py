"""Worker-side job execution.

:func:`execute_job` is the default job runner: it takes a *plain dict*
(a serialised :class:`~repro.service.jobs.JobSpec`), compiles the
kernel, runs the selected engine, and returns a plain-dict payload.
It never raises — an analysis failure comes back as an ``error``
payload so the scheduler can record it without losing the batch.

The function lives at module top level so worker processes can reach
it by import, and so tests can swap in their own runner (crashing,
hanging, flaky) to exercise the scheduler's fault handling.
"""
from __future__ import annotations

import time
import traceback
from dataclasses import asdict
from typing import Dict, Optional

from .jobs import JobSpec, JobStatus

#: engine registry; resolved lazily so a worker only imports what it runs
ENGINE_NAMES = ("sesa", "gkleep", "gklee")


def _engine_class(name: str):
    from ..core import GKLEE, GKLEEp, SESA
    try:
        return {"sesa": SESA, "gkleep": GKLEEp, "gklee": GKLEE}[name]
    except KeyError:
        raise ValueError(f"unknown engine {name!r} "
                         f"(expected one of {ENGINE_NAMES})") from None


def execute_job(spec_dict: dict) -> dict:
    """Run one analysis job; always returns a result payload dict.

    Payload shape::

        {"status": "done"|"error", "verdict": {...}|None,
         "check_stats": {...}|None, "elapsed_seconds": float,
         "error": str|None}
    """
    start = time.perf_counter()
    try:
        spec = JobSpec.from_dict(spec_dict)
        engine_cls = _engine_class(spec.engine)
        tool = engine_cls.from_source(spec.source, spec.kernel_name)
        report = tool.check(spec.launch_config())
        if hasattr(tool, "inferred_symbolic_inputs"):      # SESA
            inputs = {"symbolic": len(tool.inferred_symbolic_inputs()),
                      "total": len(tool.taint.verdicts)}
        elif hasattr(tool, "default_symbolic_inputs"):     # GKLEE(p)
            n = len(tool.default_symbolic_inputs())
            inputs = {"symbolic": n, "total": n}
        else:
            inputs = None
        repair = None
        if spec.repair and spec.engine == "sesa" and report.has_races:
            from ..repair import repair_source
            outcome = repair_source(
                spec.source, config=spec.launch_config(),
                kernel_name=spec.kernel_name,
                time_budget_seconds=spec.time_budget_seconds)
            repair = outcome.to_dict()
        return {
            "status": JobStatus.DONE,
            "verdict": report.to_dict(),
            "check_stats": (asdict(report.check_stats)
                            if report.check_stats is not None else None),
            "inputs": inputs,
            "repair": repair,
            "elapsed_seconds": time.perf_counter() - start,
            "error": None,
        }
    except Exception:
        return {
            "status": JobStatus.ERROR,
            "verdict": None,
            "check_stats": None,
            "inputs": None,
            "repair": None,
            "elapsed_seconds": time.perf_counter() - start,
            "error": traceback.format_exc(limit=8),
        }
