"""Content-addressed result cache for batch analysis.

A verdict is a pure function of *(canonical IR, launch configuration,
engine, tool version)* — so that 4-tuple, hashed, is the cache key.
Hashing the canonical IR (the SSA bytecode after the standard pass
pipeline) rather than the raw source means whitespace/comment edits
and other semantics-preserving rewrites still hit the cache, while any
change that survives into the IR misses.

Entries are one JSON file each under ``cache_dir/ab/abcdef....json``
(two-level fan-out keeps directories small on big corpora). The stored
payload is byte-for-byte what the worker produced, so a cache hit
reproduces the original verdict exactly.
"""
from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Optional

from .. import __version__ as TOOL_VERSION
from .jobs import JobSpec


def canonical_ir(source: str, kernel_name: Optional[str] = None) -> str:
    """The post-pipeline SSA bytecode for *source* (cache-key input).

    Falls back to the raw source text when compilation fails — the job
    will fail identically in the worker, and that failure is just as
    deterministic a function of the source.
    """
    try:
        from ..frontend import compile_source
        from ..ir import module_to_str
        from ..passes import standard_pipeline
        module = compile_source(source)
        standard_pipeline().run(module)
        return module_to_str(module)
    except Exception:
        return f"<uncompilable>\n{source}"


def cache_key(spec: JobSpec) -> str:
    """SHA-256 over (canonical IR, config fingerprint, engine, version)."""
    material = json.dumps({
        "ir": canonical_ir(spec.source, spec.kernel_name),
        "config": spec.config_fingerprint(),
        "tool_version": TOOL_VERSION,
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """JSON-on-disk verdict cache with hit/miss accounting."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def key_for(self, spec: JobSpec) -> str:
        return cache_key(spec)

    def get(self, key: str) -> Optional[dict]:
        """The stored worker payload, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Persist a worker payload (atomic rename; last writer wins)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)

    # ------------------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "lookups": self.lookups, "dir": self.cache_dir}

    # ------------------------------------------------------------------
    # operational maintenance (``repro cache`` / long-running daemons)
    # ------------------------------------------------------------------

    def _iter_entries(self):
        """(path, size_bytes, mtime) for every entry on disk."""
        for fanout in sorted(os.listdir(self.cache_dir)):
            subdir = os.path.join(self.cache_dir, fanout)
            if len(fanout) != 2 or not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(subdir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue   # pruned concurrently
                yield path, st.st_size, st.st_mtime

    def disk_stats(self) -> dict:
        """What is actually on disk (entry count, bytes, age span)."""
        entries = bytes_total = 0
        oldest = newest = None
        now = time.time()
        for _path, size, mtime in self._iter_entries():
            entries += 1
            bytes_total += size
            age = now - mtime
            oldest = age if oldest is None else max(oldest, age)
            newest = age if newest is None else min(newest, age)
        return {"dir": self.cache_dir, "entries": entries,
                "bytes": bytes_total,
                "oldest_age_seconds": (round(oldest, 3)
                                       if oldest is not None else None),
                "newest_age_seconds": (round(newest, 3)
                                       if newest is not None else None)}

    def prune(self, max_age_seconds: Optional[float] = None,
              max_bytes: Optional[int] = None) -> dict:
        """Bound the cache directory for long-running daemons.

        Two independent policies, applied in order: entries older than
        *max_age_seconds* are always evicted; then, if the survivors
        still exceed *max_bytes*, the oldest are evicted until the
        total fits (classic LRU-by-mtime — ``get`` does not bump
        mtimes, so this is strictly eviction by write age).
        """
        now = time.time()
        survivors = []
        removed = freed = 0
        for path, size, mtime in self._iter_entries():
            if max_age_seconds is not None \
                    and now - mtime > max_age_seconds:
                removed += 1
                freed += size
                self._remove(path)
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None:
            survivors.sort()   # oldest first
            total = sum(size for _mtime, size, _path in survivors)
            while survivors and total > max_bytes:
                _mtime, size, path = survivors.pop(0)
                removed += 1
                freed += size
                total -= size
                self._remove(path)
        return {"removed": removed, "freed_bytes": freed,
                "kept": len(survivors), "dir": self.cache_dir}

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass   # already gone — eviction is idempotent


def trace_hit_rate(trace_path: str) -> Optional[dict]:
    """Lifetime hit-rate from a JSONL telemetry trace.

    The cache itself only counts hits/misses for the current process;
    the daemon's append-mode trace is the durable record. Returns
    ``None`` when the trace is missing/unreadable.
    """
    hits = misses = 0
    try:
        with open(trace_path, "r", encoding="utf-8") as fh:
            for line in fh:
                try:
                    event = json.loads(line)
                except ValueError:
                    continue   # torn write at the tail of a live trace
                if event.get("event") == "cache_hit":
                    hits += 1
                elif event.get("event") == "cache_miss":
                    misses += 1
    except OSError:
        return None
    lookups = hits + misses
    return {"hits": hits, "misses": misses, "lookups": lookups,
            "hit_rate": round(hits / lookups, 4) if lookups else None,
            "trace": trace_path}
