"""Content-addressed result cache for batch analysis.

A verdict is a pure function of *(canonical IR, launch configuration,
engine, tool version)* — so that 4-tuple, hashed, is the cache key.
Hashing the canonical IR (the SSA bytecode after the standard pass
pipeline) rather than the raw source means whitespace/comment edits
and other semantics-preserving rewrites still hit the cache, while any
change that survives into the IR misses.

Entries are one JSON file each under ``cache_dir/ab/abcdef....json``
(two-level fan-out keeps directories small on big corpora). The stored
payload is byte-for-byte what the worker produced, so a cache hit
reproduces the original verdict exactly.
"""
from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Optional

from .. import __version__ as TOOL_VERSION
from .jobs import JobSpec


def canonical_ir(source: str, kernel_name: Optional[str] = None) -> str:
    """The post-pipeline SSA bytecode for *source* (cache-key input).

    Falls back to the raw source text when compilation fails — the job
    will fail identically in the worker, and that failure is just as
    deterministic a function of the source.
    """
    try:
        from ..frontend import compile_source
        from ..ir import module_to_str
        from ..passes import standard_pipeline
        module = compile_source(source)
        standard_pipeline().run(module)
        return module_to_str(module)
    except Exception:
        return f"<uncompilable>\n{source}"


def cache_key(spec: JobSpec) -> str:
    """SHA-256 over (canonical IR, config fingerprint, engine, version)."""
    material = json.dumps({
        "ir": canonical_ir(spec.source, spec.kernel_name),
        "config": spec.config_fingerprint(),
        "tool_version": TOOL_VERSION,
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """JSON-on-disk verdict cache with hit/miss accounting."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def key_for(self, spec: JobSpec) -> str:
        return cache_key(spec)

    def get(self, key: str) -> Optional[dict]:
        """The stored worker payload, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Persist a worker payload (atomic rename; last writer wins)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)

    # ------------------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "lookups": self.lookups, "dir": self.cache_dir}
