"""Batch analysis service: schedulable, cacheable, fault-isolated jobs.

The paper's headline result is *throughput* — checking the whole CUDA
SDK corpus where the comparator times out. This package is the
orchestration layer that makes corpus-scale runs a first-class
operation:

* :mod:`~repro.service.jobs` — the serialisable job model
  (:class:`JobSpec` in, :class:`JobResult` out);
* :mod:`~repro.service.scheduler` — a parallel, fault-isolating
  scheduler (process-per-job, hard timeouts, bounded retries);
* :mod:`~repro.service.cache` — a content-addressed verdict cache
  keyed on (canonical IR, config, engine, tool version);
* :mod:`~repro.service.telemetry` — structured JSONL event traces
  plus aggregate summaries;
* :mod:`~repro.service.corpus` — enumeration of the built-in paper
  suites and user-supplied kernel directories;
* :mod:`~repro.service.daemon` — the persistent service: durable
  SQLite job queue, lease-based worker fleet, and HTTP/JSON API
  (`repro serve` / `repro submit`).

Typical use::

    from repro.service import load_corpus, run_batch

    batch = run_batch(load_corpus(["builtin:sdk"]), max_workers=4,
                      cache_dir=".repro-cache")
    for job in batch.jobs:
        print(job.job_id, job.status, job.issue_tags())
"""
from .cache import ResultCache, cache_key, canonical_ir, trace_hit_rate
from .corpus import (
    SUITES, builtin_jobs, directory_jobs, file_job, load_corpus,
    spec_from_kernel, stream_jobs,
)
from .jobs import (
    JOB_KINDS, JobResult, JobSpec, JobState, JobStatus,
    JobValidationError,
)
from .runner import execute_job, run_job_inline, run_job_isolated
from .scheduler import BatchResult, Scheduler, run_batch
from .swarm import (
    SwarmPlanError, plan_shard_specs, run_portfolio, run_swarm_batch,
    run_swarm_check, swarm_cache_key,
)
from .telemetry import Telemetry

__all__ = [
    "BatchResult", "JobResult", "JobSpec", "JobState", "JobStatus",
    "JobValidationError", "ResultCache", "SUITES", "Scheduler",
    "Telemetry", "builtin_jobs", "cache_key", "canonical_ir",
    "directory_jobs", "execute_job", "file_job", "load_corpus",
    "JOB_KINDS", "run_batch", "run_job_inline", "run_job_isolated",
    "spec_from_kernel", "stream_jobs", "trace_hit_rate",
    "SwarmPlanError", "plan_shard_specs", "run_portfolio",
    "run_swarm_batch", "run_swarm_check", "swarm_cache_key",
]
