"""Batch analysis service: schedulable, cacheable, fault-isolated jobs.

The paper's headline result is *throughput* — checking the whole CUDA
SDK corpus where the comparator times out. This package is the
orchestration layer that makes corpus-scale runs a first-class
operation:

* :mod:`~repro.service.jobs` — the serialisable job model
  (:class:`JobSpec` in, :class:`JobResult` out);
* :mod:`~repro.service.scheduler` — a parallel, fault-isolating
  scheduler (process-per-job, hard timeouts, bounded retries);
* :mod:`~repro.service.cache` — a content-addressed verdict cache
  keyed on (canonical IR, config, engine, tool version);
* :mod:`~repro.service.telemetry` — structured JSONL event traces
  plus aggregate summaries;
* :mod:`~repro.service.corpus` — enumeration of the built-in paper
  suites and user-supplied kernel directories.

Typical use::

    from repro.service import load_corpus, run_batch

    batch = run_batch(load_corpus(["builtin:sdk"]), max_workers=4,
                      cache_dir=".repro-cache")
    for job in batch.jobs:
        print(job.job_id, job.status, job.issue_tags())
"""
from .cache import ResultCache, cache_key, canonical_ir
from .corpus import (
    SUITES, builtin_jobs, directory_jobs, file_job, load_corpus,
    spec_from_kernel,
)
from .jobs import JobResult, JobSpec, JobStatus
from .runner import execute_job
from .scheduler import BatchResult, Scheduler, run_batch
from .telemetry import Telemetry

__all__ = [
    "BatchResult", "JobResult", "JobSpec", "JobStatus", "ResultCache",
    "SUITES", "Scheduler", "Telemetry", "builtin_jobs", "cache_key",
    "canonical_ir", "directory_jobs", "execute_job", "file_job",
    "load_corpus", "run_batch", "spec_from_kernel",
]
