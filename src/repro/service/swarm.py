"""Swarm orchestration: run one kernel's race check as shard jobs.

The planner (:func:`plan_shard_specs`) compiles and symbolically
executes the kernel **once** on the coordinator side — no SAT solving
— to enumerate the canonical pair groups, partitions them with
:func:`repro.sym.swarm.plan_partitions`, and emits one ordinary
:class:`JobSpec` per shard. Shards run through the existing
process-isolated :class:`~repro.service.scheduler.Scheduler` (or the
daemon queue — see :mod:`repro.service.daemon.api`) exactly like any
other job: the shard descriptor is part of the cache fingerprint, so
the cache/dedup layers work unchanged and a shard verdict can never be
confused with a monolithic one.

Portfolio mode races the *same* shard under several solver configs
(conflict budgets, pruning on/off) in parallel worker processes and
takes the first definitive answer, killing the rest — useful when one
config is pathologically slow on a particular shard.

The merged verdict is :func:`repro.sym.swarm.merge_shard_outcomes`:
racy if any shard is racy, safe only when every shard completed
cleanly safe, unknown otherwise (with the unresolved shards listed).
"""
from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
from multiprocessing import connection as mp_connection
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .. import __version__ as TOOL_VERSION
from ..sym.swarm import (
    RACY, SAFE, UNKNOWN, ShardOutcome, ShardSelector,
    merge_shard_outcomes, plan_partitions, validate_partition,
)
from .cache import ResultCache, cache_key
from .jobs import JobResult, JobSpec, JobStatus
from .runner import Runner, _child_entry, execute_job
from .scheduler import BatchResult, Scheduler
from .telemetry import Telemetry


class SwarmPlanError(RuntimeError):
    """The kernel cannot be swarm-planned (non-SESA engine, compile
    failure, ...). Callers fall back to the monolithic path."""


#: default portfolio: the standard config, a low-conflict-budget
#: sprint (wins when the queries are easy; gives up early when not),
#: and the unpruned path (wins when pruning's pre-analysis is the
#: bottleneck). All three produce sound verdicts; only "definitive"
#: outcomes (completed, not timed out) may win the race.
DEFAULT_PORTFOLIO: Tuple[Tuple[str, dict], ...] = (
    ("default", {}),
    ("low-budget", {"solver_conflict_budget": 20_000}),
    ("no-pruning", {"pair_pruning": False}),
)


def swarm_cache_key(spec: JobSpec, num_shards: int) -> str:
    """Cache key for the *merged* parent verdict. Derived from the
    monolithic key plus the shard count — merged results never share
    entries with monolithic verdicts (witnesses may differ)."""
    material = json.dumps({
        "parent": cache_key(spec), "swarm": num_shards,
        "tool_version": TOOL_VERSION,
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def plan_shard_specs(spec: JobSpec, num_shards: int,
                     max_pairs_per_shard: Optional[int] = None,
                     ) -> Tuple[List[JobSpec], List[ShardSelector], dict]:
    """Split *spec* into shard job specs.

    Returns ``(shard_specs, selectors, plan_info)``. Raises
    :class:`SwarmPlanError` when the kernel cannot be planned.
    """
    if num_shards < 1:
        raise SwarmPlanError("num_shards must be >= 1")
    if spec.engine != "sesa":
        raise SwarmPlanError(
            f"swarm checking supports the sesa engine only "
            f"(got {spec.engine!r})")
    if spec.shard is not None:
        raise SwarmPlanError("cannot re-shard an existing shard job")
    if spec.repair:
        raise SwarmPlanError("repair jobs cannot be sharded")
    try:
        from ..core import SESA
        tool = SESA.from_source(spec.source, spec.kernel_name)
        groups = tool.plan_check_groups(spec.launch_config())
    except SwarmPlanError:
        raise
    except Exception as exc:
        raise SwarmPlanError(
            f"swarm planning failed for {spec.job_id!r}: "
            f"{type(exc).__name__}: {exc}") from None
    selectors = plan_partitions([size for _key, size in groups],
                                num_shards, max_pairs_per_shard)
    validate_partition(selectors)
    base = spec.to_dict()
    shard_specs = []
    for sel in selectors:
        data = dict(base)
        data["job_id"] = f"{spec.job_id}#{sel.label()}"
        data["shard"] = sel.to_dict()
        data["meta"] = dict(spec.meta,
                            swarm_parent=spec.job_id,
                            swarm_parent_key=cache_key(spec),
                            shard=sel.label())
        shard_specs.append(JobSpec.from_dict(data))
    plan_info = {
        "total_pairs": sum(size for _key, size in groups),
        "groups": len(groups),
        "shards": len(selectors),
        "requested_shards": num_shards,
    }
    return shard_specs, selectors, plan_info


def outcomes_from_results(selectors: Sequence[ShardSelector],
                          results: Sequence[Optional[JobResult]],
                          ) -> List[ShardOutcome]:
    """Pair up planner selectors with scheduler results. A missing or
    failed result still produces an outcome — classified UNKNOWN."""
    outcomes = []
    for sel, result in zip(selectors, results):
        if result is None:
            outcomes.append(ShardOutcome(
                shard=sel, status="lost", error="no result recorded"))
            continue
        outcomes.append(ShardOutcome(
            shard=sel, status=result.status, verdict=result.verdict,
            job_id=result.job_id, error=result.error,
            elapsed_seconds=result.elapsed_seconds))
    return outcomes


def merged_job_result(spec: JobSpec, outcomes: Sequence[ShardOutcome],
                      cache_key_used: Optional[str] = None,
                      elapsed_seconds: float = 0.0) -> JobResult:
    """The parent-level :class:`JobResult` for a merged swarm check.

    The parent is DONE with a merged verdict whenever *any* shard
    produced one (an unresolved shard surfaces as ``timed_out`` +
    warnings — unknown, never safe); it is ERROR only when every
    shard failed outright.
    """
    if not any(o.verdict for o in outcomes):
        failures = "; ".join(
            f"{o.shard.label()}: {o.status}"
            + (f" ({o.error})" if o.error else "")
            for o in outcomes)
        return JobResult(
            job_id=spec.job_id, status=JobStatus.ERROR,
            engine=spec.engine,
            attempts=sum(1 for _ in outcomes),
            elapsed_seconds=elapsed_seconds, cache_key=cache_key_used,
            error=f"all {len(outcomes)} shard(s) failed: {failures}")
    merged = merge_shard_outcomes(outcomes)
    return JobResult(
        job_id=spec.job_id, status=JobStatus.DONE, engine=spec.engine,
        attempts=len(outcomes), elapsed_seconds=elapsed_seconds,
        cache_key=cache_key_used, verdict=merged,
        check_stats=merged.get("check_stats"))


# ----------------------------------------------------------------------
# portfolio mode
# ----------------------------------------------------------------------

def _definitive(payload: Optional[dict]) -> bool:
    """A payload that settles the shard: completed, not timed out."""
    return bool(payload) and payload.get("status") == JobStatus.DONE \
        and not (payload.get("verdict") or {}).get("timed_out")


def run_portfolio(spec_dict: dict,
                  variants: Sequence[Tuple[str, dict]] = DEFAULT_PORTFOLIO,
                  timeout_seconds: Optional[float] = None,
                  runner: Runner = execute_job) -> dict:
    """Race *spec_dict* under several configs; first definitive answer
    wins and the remaining workers are killed (terminate + join, so no
    leaked processes). Falls back to the best non-definitive payload
    (a completed-but-unknown verdict beats an error) when nobody wins.
    """
    start = time.perf_counter()
    procs: Dict[object, Tuple[str, mp.Process]] = {}
    for name, overrides in variants:
        variant = dict(spec_dict)
        variant.update(overrides)
        parent_conn, child_conn = mp.Pipe(duplex=False)
        proc = mp.Process(target=_child_entry,
                          args=(child_conn, runner, variant),
                          daemon=True)
        proc.start()
        child_conn.close()
        procs[parent_conn] = (name, proc)

    deadline = None if timeout_seconds is None \
        else time.monotonic() + timeout_seconds
    winner_name = None
    winner_payload = None
    fallback: Tuple[int, Optional[str], Optional[dict]] = (99, None, None)
    pending = dict(procs)
    try:
        while pending and winner_payload is None:
            wait_for = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            ready = mp_connection.wait(list(pending), timeout=wait_for)
            if not ready:
                break   # portfolio-level timeout
            for conn in ready:
                name, proc = pending.pop(conn)
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    payload = None   # variant crashed
                if _definitive(payload):
                    winner_name, winner_payload = name, payload
                    break
                rank = 1 if payload and payload.get("verdict") else 2
                if payload is not None and rank < fallback[0]:
                    fallback = (rank, name, payload)
    finally:
        # cancel everything still running — winners, losers and
        # timeouts alike leave no processes behind
        for conn, (name, proc) in procs.items():
            try:
                conn.close()
            except OSError:
                pass
            if proc.is_alive():
                proc.terminate()
            proc.join(5.0)
            if proc.is_alive():
                proc.kill()
                proc.join()

    if winner_payload is None:
        _rank, winner_name, winner_payload = fallback
    if winner_payload is None:
        winner_payload = {
            "status": JobStatus.ERROR, "verdict": None,
            "check_stats": None, "inputs": None, "repair": None,
            "elapsed_seconds": time.perf_counter() - start,
            "error": "portfolio: no variant delivered a payload",
        }
    winner_payload = dict(winner_payload)
    winner_payload["portfolio"] = {
        "winner": winner_name,
        "variants": [name for name, _ in variants],
        "elapsed_seconds": round(time.perf_counter() - start, 6),
    }
    return winner_payload


def portfolio_runner(variants: Sequence[Tuple[str, dict]]
                     = DEFAULT_PORTFOLIO,
                     timeout_seconds: Optional[float] = None) -> Runner:
    """A scheduler-compatible runner that races each job through the
    portfolio (the scheduler's own fork adds one extra process layer;
    the variants are grandchildren, cleaned up by run_portfolio)."""
    def run(spec_dict: dict) -> dict:
        return run_portfolio(spec_dict, variants, timeout_seconds)
    return run


# ----------------------------------------------------------------------
# batch driving
# ----------------------------------------------------------------------

def run_swarm_batch(specs: Sequence[JobSpec], num_shards: int, *,
                    max_workers: int = 4,
                    timeout_seconds: Optional[float] = None,
                    max_retries: int = 1,
                    cache: Optional[ResultCache] = None,
                    telemetry: Optional[Telemetry] = None,
                    portfolio: bool = False,
                    max_pairs_per_shard: Optional[int] = None,
                    isolate: bool = True) -> BatchResult:
    """Check every spec swarm-style: plan shards, run them all through
    one scheduler pass, merge per parent. Parents that cannot be
    planned (non-SESA engine, compile failure at plan time) fall back
    to ordinary monolithic jobs in the same scheduler run, so a swarm
    batch always yields one result per submitted spec, in submission
    order — exactly like ``Scheduler.run``.
    """
    telemetry = telemetry or Telemetry()
    start = time.perf_counter()
    hits0 = cache.hits if cache else 0
    misses0 = cache.misses if cache else 0

    # -- plan --------------------------------------------------------
    plans: List[dict] = []          # one entry per submitted spec
    work: List[JobSpec] = []        # shard + fallback specs to run
    for spec in specs:
        parent_key = swarm_cache_key(spec, num_shards) if cache else None
        if parent_key is not None:
            payload = cache.get(parent_key)
            if payload is not None:
                telemetry.emit("cache_hit", job_id=spec.job_id,
                               cache_key=parent_key)
                plans.append({"spec": spec, "cached": payload,
                              "parent_key": parent_key})
                continue
            telemetry.emit("cache_miss", job_id=spec.job_id,
                           cache_key=parent_key)
        try:
            shard_specs, selectors, info = plan_shard_specs(
                spec, num_shards, max_pairs_per_shard)
        except SwarmPlanError as exc:
            telemetry.emit("swarm_fallback", job_id=spec.job_id,
                           reason=str(exc))
            plans.append({"spec": spec, "fallback": len(work),
                          "parent_key": parent_key})
            work.append(spec)
            continue
        telemetry.emit("swarm_planned", job_id=spec.job_id,
                       shards=info["shards"],
                       total_pairs=info["total_pairs"],
                       groups=info["groups"])
        plans.append({"spec": spec, "selectors": selectors,
                      "first": len(work), "count": len(shard_specs),
                      "parent_key": parent_key, "info": info})
        work.extend(shard_specs)

    # -- run every shard (and fallback) through one scheduler pass ---
    runner = portfolio_runner(timeout_seconds=timeout_seconds) \
        if portfolio else execute_job
    results: List[Optional[JobResult]] = []
    if work:
        # portfolio mode supplies its own process isolation (one child
        # per variant); the scheduler must then run the runner in its
        # dispatcher threads — a daemonic scheduler child could not
        # fork the variant processes
        sched = Scheduler(max_workers=max_workers,
                          timeout_seconds=timeout_seconds,
                          max_retries=max_retries, cache=cache,
                          telemetry=telemetry, runner=runner,
                          isolate=isolate and not portfolio)
        results = list(sched.run(work).jobs)
        results.extend([None] * (len(work) - len(results)))

    # -- merge per parent --------------------------------------------
    merged_results: List[JobResult] = []
    for plan in plans:
        spec = plan["spec"]
        if "cached" in plan:
            payload = plan["cached"]
            merged_results.append(JobResult(
                job_id=spec.job_id, status=JobStatus.CACHED,
                engine=spec.engine, attempts=0, cached=True,
                cache_key=plan["parent_key"],
                verdict=payload.get("verdict"),
                check_stats=payload.get("check_stats")))
            continue
        if "fallback" in plan:
            result = results[plan["fallback"]]
            merged_results.append(result if result is not None
                                  else JobResult(
                                      job_id=spec.job_id,
                                      status=JobStatus.ERROR,
                                      engine=spec.engine,
                                      error="no result recorded"))
            continue
        window = results[plan["first"]:plan["first"] + plan["count"]]
        outcomes = outcomes_from_results(plan["selectors"], window)
        for outcome in outcomes:
            telemetry.emit(
                "shard_finished", job_id=spec.job_id,
                shard=outcome.shard.label(), status=outcome.status,
                outcome=outcome.classify(),
                pairs=outcome.shard.num_pairs)
        elapsed = sum(o.elapsed_seconds for o in outcomes)
        parent = merged_job_result(spec, outcomes,
                                   cache_key_used=plan["parent_key"],
                                   elapsed_seconds=elapsed)
        telemetry.emit(
            "swarm_merged", job_id=spec.job_id,
            verdict=(parent.verdict or {}).get("swarm", {}).get("verdict"),
            shards=len(outcomes),
            unresolved=(parent.verdict or {}).get(
                "swarm", {}).get("unresolved"),
            status=parent.status)
        if parent.status == JobStatus.DONE and cache is not None \
                and plan["parent_key"] is not None \
                and not (parent.verdict or {}).get("timed_out"):
            cache.put(plan["parent_key"], {
                "status": JobStatus.DONE, "verdict": parent.verdict,
                "check_stats": parent.check_stats, "inputs": None,
                "repair": None, "elapsed_seconds": parent.elapsed_seconds,
                "error": None})
        merged_results.append(parent)

    return BatchResult(
        jobs=merged_results,
        elapsed_seconds=time.perf_counter() - start,
        cache_hits=(cache.hits - hits0) if cache else 0,
        cache_misses=(cache.misses - misses0) if cache else 0)


def run_swarm_check(spec: JobSpec, num_shards: int, *,
                    max_workers: Optional[int] = None,
                    timeout_seconds: Optional[float] = None,
                    cache: Optional[ResultCache] = None,
                    telemetry: Optional[Telemetry] = None,
                    portfolio: bool = False,
                    max_pairs_per_shard: Optional[int] = None,
                    isolate: bool = True) -> JobResult:
    """Swarm-check a single kernel (the ``repro check --swarm N``
    path): plan, run shards in parallel, merge."""
    batch = run_swarm_batch(
        [spec], num_shards,
        max_workers=max_workers if max_workers is not None
        else max(1, num_shards),
        timeout_seconds=timeout_seconds, cache=cache,
        telemetry=telemetry, portfolio=portfolio,
        max_pairs_per_shard=max_pairs_per_shard, isolate=isolate)
    return batch.jobs[0]
