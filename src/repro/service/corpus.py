"""Corpus enumeration: turning kernel collections into job specs.

Two sources of work:

* the **built-in suites** of :mod:`repro.kernels` (the paper's Tables
  I-IV benchmarks), addressed as ``builtin`` or ``builtin:<suite>``;
* **user directories / files** of MiniCUDA sources (``*.cu``),
  enumerated recursively and addressed by path.

Each kernel becomes one :class:`~repro.service.jobs.JobSpec` carrying
the launch configuration the paper used (for built-ins) or the CLI
defaults (for user sources).
"""
from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from ..kernels import (
    ALL_KERNELS, DIVERGENT_KERNELS, Kernel, LONESTAR_KERNELS,
    PAPER_EXAMPLES, PARBOIL_KERNELS, REDUCTION_FAMILY, SDK_KERNELS,
)
from .jobs import JobSpec

#: suite name → kernel list, mirroring the paper's tables
SUITES: Dict[str, List[Kernel]] = {
    "paper": list(PAPER_EXAMPLES),
    "sdk": list(SDK_KERNELS),
    "reductions": list(REDUCTION_FAMILY),
    "divergent": list(DIVERGENT_KERNELS),
    "lonestar": list(LONESTAR_KERNELS),
    "parboil": list(PARBOIL_KERNELS),
}

SOURCE_SUFFIXES = (".cu", ".minicuda")


def spec_from_kernel(kernel: Kernel, engine: str = "sesa",
                     suite: Optional[str] = None) -> JobSpec:
    """A job spec running *kernel* under its paper configuration."""
    return JobSpec(
        job_id=f"builtin/{suite or 'all'}/{kernel.name}",
        source=kernel.source,
        kernel_name=kernel.kernel_name,
        engine=engine,
        grid_dim=kernel.grid_dim,
        block_dim=kernel.block_dim,
        check_oob=not kernel.disable_oob,
        scalar_values=dict(kernel.scalar_values),
        array_sizes=dict(kernel.array_sizes),
        max_loop_splits=kernel.max_loop_splits,
        needs_concrete_graph=kernel.table.startswith("Table III"),
        meta={"kernel": kernel.name, "suite": suite, "table": kernel.table,
              "expected_issues": list(kernel.expected_issues)})


def stream_jobs() -> List[JobSpec]:
    """Specs for the built-in stream-program suite
    (:mod:`repro.kernels.streams`): one ``stream`` job per program."""
    from ..kernels.streams import STREAM_CASES
    return [
        JobSpec(
            job_id=f"builtin/streams/{case.name}",
            source=case.program.source,
            kind="stream",
            stream_program=case.program.to_dict(include_source=False),
            meta={"suite": "streams", "program": case.name,
                  "expected_racy": case.expected_racy,
                  "notes": case.notes})
        for case in STREAM_CASES
    ]


def builtin_jobs(suite: Optional[str] = None,
                 engine: str = "sesa") -> List[JobSpec]:
    """Specs for one built-in suite, or the whole corpus.

    ``streams`` is a special suite of whole stream *programs*; it is
    addressed explicitly (``builtin:streams``) and deliberately not
    part of the no-suite full corpus, which stays kernels-only.
    """
    if suite == "streams":
        return stream_jobs()
    if suite is None:
        out = []
        for name, kernels in SUITES.items():
            out.extend(spec_from_kernel(k, engine, name) for k in kernels)
        return out
    try:
        kernels = SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown suite {suite!r} "
            f"(expected one of {', '.join(sorted(SUITES) + ['streams'])})"
        ) from None
    return [spec_from_kernel(k, engine, suite) for k in kernels]


def file_job(path: str, engine: str = "sesa",
             root: Optional[str] = None, **config) -> JobSpec:
    """A spec for one MiniCUDA source file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    job_id = os.path.relpath(path, root) if root else path
    return JobSpec(job_id=job_id, source=source, engine=engine, **config)


def directory_jobs(path: str, engine: str = "sesa",
                   **config) -> List[JobSpec]:
    """Specs for every kernel source under *path* (recursive, sorted)."""
    found: List[str] = []
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(SOURCE_SUFFIXES):
                found.append(os.path.join(dirpath, name))
    return [file_job(p, engine, root=path, **config) for p in found]


def load_corpus(targets: Sequence[str], engine: str = "sesa",
                **config) -> List[JobSpec]:
    """Resolve CLI corpus targets into job specs.

    A target is ``builtin``, ``builtin:<suite>``, a directory, or a
    single source file. No targets means the full built-in corpus.
    """
    if not targets:
        targets = ["builtin"]
    specs: List[JobSpec] = []
    for target in targets:
        if target == "builtin":
            specs.extend(builtin_jobs(None, engine))
        elif target.startswith("builtin:"):
            specs.extend(builtin_jobs(target.split(":", 1)[1], engine))
        elif os.path.isdir(target):
            specs.extend(directory_jobs(target, engine, **config))
        elif os.path.isfile(target):
            specs.append(file_job(target, engine, **config))
        else:
            raise FileNotFoundError(
                f"corpus target {target!r} is neither a built-in suite "
                f"nor an existing path")
    return specs
