"""HTTP client for the race-check daemon (stdlib ``urllib`` only).

`repro submit/status/result/queue` are thin wrappers over this class;
it is also the programmatic interface::

    client = DaemonClient("http://127.0.0.1:8642")
    jobs = client.submit_suite("paper")
    done = client.wait([j["job_id"] for j in jobs], timeout=300)
    for job_id, status in done.items():
        print(job_id, status["result"]["status"])

Errors: any non-2xx response raises :class:`DaemonError` carrying the
HTTP status and the server's ``error`` string; connection failures
raise :class:`DaemonUnavailable` so callers can distinguish "the
daemon rejected this" from "there is no daemon".
"""
from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterable, List, Optional

from ..jobs import JobState


class DaemonError(RuntimeError):
    """The daemon answered with an error status."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code
        self.message = message


class DaemonUnavailable(ConnectionError):
    """No daemon is listening at the given URL."""


class DaemonClient:
    """JSON-over-HTTP client; one instance per daemon URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(self, path: str, body: Optional[dict] = None,
                 ok_codes: Iterable[int] = (200,)) -> dict:
        url = self.base_url + path
        data = json.dumps(body).encode("utf-8") \
            if body is not None else None
        req = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"}
            if data else {})
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout) as resp:
                payload = json.loads(resp.read())
                code = resp.status
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except Exception:
                message = str(exc)
            if exc.code in ok_codes:
                return {"__code__": exc.code, "error": message}
            raise DaemonError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise DaemonUnavailable(
                f"no daemon at {self.base_url}: {exc.reason}") from None
        if code not in ok_codes:
            raise DaemonError(code, payload.get("error", ""))
        payload["__code__"] = code
        return payload

    # ------------------------------------------------------------------
    # the five endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> bool:
        return bool(self._request("/healthz").get("ok"))

    def submit(self, body: dict) -> List[dict]:
        """Raw submit; *body* as the API expects (source or suite)."""
        return self._request("/submit", body=body)["jobs"]

    def submit_source(self, source: str, label: str = "adhoc",
                      **config) -> dict:
        body = dict(config, source=source, label=label)
        return self.submit(body)[0]

    def submit_suite(self, suite: str, engine: str = "sesa",
                     swarm: Optional[int] = None) -> List[dict]:
        body = {"suite": suite, "engine": engine}
        if swarm:
            body["swarm"] = swarm
        return self.submit(body)

    def status(self, job_id: str) -> dict:
        return self._request(f"/status/{job_id}")

    def result(self, job_id: str) -> dict:
        """Terminal job: status dict with ``result`` attached. A job
        still in flight returns the bare status (``terminal: False``,
        HTTP 202)."""
        return self._request(f"/result/{job_id}", ok_codes=(200, 202))

    def queue(self) -> dict:
        return self._request("/queue")

    def stream(self, since: int = 0, follow: float = 0.0):
        """Yield telemetry events from the NDJSON tail."""
        url = f"{self.base_url}/stream?since={since}&follow={follow}"
        try:
            with urllib.request.urlopen(
                    url, timeout=self.timeout + follow) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.URLError as exc:
            raise DaemonUnavailable(
                f"no daemon at {self.base_url}: {exc}") from None

    # ------------------------------------------------------------------
    # polling convenience
    # ------------------------------------------------------------------

    def wait(self, job_ids: Iterable[str], timeout: float = 300.0,
             poll: float = 0.2) -> Dict[str, dict]:
        """Poll until every job is terminal (or *timeout*); returns
        ``{job_id: result_payload}`` for those that finished."""
        pending = list(dict.fromkeys(job_ids))
        results: Dict[str, dict] = {}
        deadline = time.monotonic() + timeout
        while pending and time.monotonic() < deadline:
            still = []
            for job_id in pending:
                payload = self.result(job_id)
                if payload.get("terminal"):
                    results[job_id] = payload
                else:
                    still.append(job_id)
            pending = still
            if pending:
                time.sleep(poll)
        return results


def format_result_line(payload: dict, width: int = 0) -> str:
    """One human-readable line per terminal job (CLI output)."""
    label = payload.get("label") or payload.get("job_id", "?")
    state = payload.get("state", "?")
    result = payload.get("result") or {}
    verdict = result.get("verdict") or {}
    if state == JobState.DONE:
        tags = []
        for race in verdict.get("races", ()):
            tag = race.get("kind", "?") + \
                (" (Benign)" if race.get("benign") else "")
            if tag not in tags:
                tags.append(tag)
        if verdict.get("oobs"):
            tags.append("OOB")
        detail = ", ".join(tags) or "clean"
        if result.get("cached"):
            detail += " [cached]"
    else:
        detail = (payload.get("error") or result.get("error")
                  or "-").strip().splitlines()[-1]
    elapsed = result.get("elapsed_seconds", 0.0) or 0.0
    return (f"{state.upper():8s} {label:{width}s} "
            f"{elapsed:7.2f}s  {detail}")
