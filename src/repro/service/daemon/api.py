"""HTTP/JSON API and the one-process daemon supervisor.

Stdlib only: :class:`http.server.ThreadingHTTPServer` dispatches each
request on its own thread; every handler is a thin translation layer
over the :class:`~repro.service.daemon.store.JobStore`, so the API
process holds no job state of its own and can be restarted freely.

Endpoints::

    POST /submit          {"source": ..., config...} | {"suite": name}
                          → {"jobs": [{"job_id", "label", "deduped"}]}
    GET  /status/<id>     queue state, attempts, lease info
    GET  /result/<id>     the JobResult payload (202 until terminal)
    GET  /queue           depth, by-state counts, leases, worker liveness
    GET  /stream          NDJSON telemetry tail (?since=N&follow=SECS)
    GET  /healthz         liveness probe

:class:`Daemon` is the supervisor `repro serve` instantiates: one
store, one shared result cache, N worker daemons, the lease reaper,
the queue sampler, and (optionally) the HTTP server, with one stop()
that drains workers gracefully.
"""
from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from ... import __version__ as TOOL_VERSION
from ...sym.swarm import ShardOutcome, ShardSelector
from ..cache import ResultCache, cache_key
from ..corpus import SUITES, builtin_jobs
from ..jobs import JobResult, JobSpec, JobState, JobStatus, \
    JobValidationError
from ..runner import Runner, execute_job
from ..swarm import (
    SwarmPlanError, merged_job_result, plan_shard_specs,
    swarm_cache_key,
)
from ..telemetry import Telemetry
from .lease import DEFAULT_LEASE_TTL, Reaper
from .store import JobRow, JobStore
from .worker import DEFAULT_POLL_INTERVAL, QueueSampler, WorkerDaemon


class SwarmMerger:
    """Background loop that finishes ``waiting`` swarm parents.

    A parent job never runs on a worker: it carries the shard plan in
    its spec meta (``meta["swarm"]``) and sits in ``waiting`` until
    every shard job it references is terminal. The merger then builds
    the shard outcomes from the stored results, merges them with the
    same :func:`~repro.service.swarm.merged_job_result` the batch path
    uses, and records the verdict — so HTTP pollers of the parent see
    202 until the merged answer exists, exactly like a plain job.
    """

    def __init__(self, store: JobStore,
                 cache: Optional[ResultCache] = None,
                 telemetry: Optional[Telemetry] = None,
                 interval: float = DEFAULT_POLL_INTERVAL) -> None:
        self.store = store
        self.cache = cache
        self.telemetry = telemetry or Telemetry()
        self.interval = interval
        self.merged = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- one parent ----------------------------------------------------

    def _shard_outcome(self, selector: ShardSelector,
                       row: Optional[JobRow]) -> ShardOutcome:
        if row is None:
            return ShardOutcome(shard=selector, status="lost",
                                error="shard job row missing")
        result = row.result or {}
        status = result.get("status") or row.state
        # failed/dead shard: whatever partial payload exists must not
        # be read as a clean verdict
        if row.state != JobState.DONE and status in ("done", "cached"):
            status = row.state
        return ShardOutcome(
            shard=selector, status=status,
            verdict=result.get("verdict"), job_id=row.job_id,
            error=row.error or result.get("error"),
            elapsed_seconds=result.get("elapsed_seconds") or 0.0)

    def _try_merge(self, parent: JobRow) -> bool:
        """Merge one waiting parent if its shards are all terminal;
        returns True when the parent reached a terminal state."""
        info = (parent.spec.get("meta") or {}).get("swarm") or {}
        shards = info.get("shards") or []
        if not shards:
            self.store.finish_waiting(
                parent.job_id,
                JobResult(job_id=parent.spec.get("job_id", "?"),
                          status=JobStatus.ERROR,
                          error="waiting parent has no shard plan"
                          ).to_dict(),
                state=JobState.FAILED,
                error="waiting parent has no shard plan")
            return True
        rows = [self.store.get(s["job_id"]) for s in shards]
        if any(row is not None and not row.terminal for row in rows):
            return False
        selectors = [ShardSelector.from_dict(s["selector"])
                     for s in shards]
        outcomes = [self._shard_outcome(sel, row)
                    for sel, row in zip(selectors, rows)]
        spec = JobSpec.from_dict(parent.spec)
        result = merged_job_result(
            spec, outcomes, cache_key_used=parent.fingerprint,
            elapsed_seconds=sum(o.elapsed_seconds for o in outcomes))
        state = JobState.DONE if result.status == JobStatus.DONE \
            else JobState.FAILED
        wrote = self.store.finish_waiting(
            parent.job_id, result.to_dict(), state=state,
            error=result.error)
        if not wrote:
            return True   # another merger instance won the race
        self.merged += 1
        verdict = result.verdict or {}
        if state == JobState.DONE and self.cache is not None \
                and not verdict.get("timed_out"):
            self.cache.put(parent.fingerprint, {
                "status": JobStatus.DONE, "verdict": result.verdict,
                "check_stats": result.check_stats, "inputs": None,
                "repair": None,
                "elapsed_seconds": result.elapsed_seconds,
                "error": None})
        self.telemetry.emit(
            "swarm_merged", job_id=parent.job_id,
            label=spec.job_id,
            verdict=verdict.get("swarm", {}).get("verdict"),
            shards=len(outcomes),
            unresolved=verdict.get("swarm", {}).get("unresolved"),
            state=state)
        return True

    # -- the loop ------------------------------------------------------

    def sweep(self) -> int:
        merged = 0
        for parent in self.store.list_jobs(state=JobState.WAITING,
                                           limit=1000):
            try:
                if self._try_merge(parent):
                    merged += 1
            except Exception as exc:   # keep the loop alive
                self.telemetry.emit("swarm_merge_error",
                                    job_id=parent.job_id,
                                    error=f"{type(exc).__name__}: "
                                          f"{exc}")
        return merged

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sweep()

    def start(self) -> "SwarmMerger":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="swarm-merger")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.sweep()   # catch parents whose shards finished at drain


class Daemon:
    """Everything `repro serve` runs, as one object (API optional so
    tests and benchmarks can drive the queue in-process)."""

    def __init__(self, db_path: str,
                 cache_dir: Optional[str] = None,
                 trace_path: Optional[str] = None,
                 workers: int = 2,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 timeout_seconds: Optional[float] = None,
                 sample_interval: float = 5.0,
                 max_attempts: int = 2,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 runner: Runner = execute_job,
                 isolate: bool = True) -> None:
        self.store = JobStore(db_path, default_max_attempts=max_attempts)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.telemetry = Telemetry(trace_path, mode="a")
        self.started_at = time.time()
        self.lease_ttl = lease_ttl
        self.host = host
        self.port = port
        self.workers = [
            WorkerDaemon(self.store, worker_id=f"w{i}",
                         cache=self.cache, telemetry=self.telemetry,
                         runner=runner, lease_ttl=lease_ttl,
                         poll_interval=poll_interval,
                         timeout_seconds=timeout_seconds,
                         isolate=isolate)
            for i in range(max(1, workers))]
        self.reaper = Reaper(self.store, lease_ttl,
                             telemetry=self.telemetry)
        self.merger = SwarmMerger(self.store, cache=self.cache,
                                  telemetry=self.telemetry,
                                  interval=poll_interval)
        self.sampler = QueueSampler(self.store, self.telemetry,
                                    self.workers,
                                    interval=sample_interval)
        self.server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # submission (shared by the API handler and in-process callers)
    # ------------------------------------------------------------------

    def submit_spec(self, spec: JobSpec) -> dict:
        """Validate, fingerprint, and enqueue one spec."""
        spec.validate()
        fingerprint = (self.cache.key_for(spec) if self.cache
                       else cache_key(spec))
        job_id, deduped = self.store.submit(spec, fingerprint)
        self.telemetry.emit(
            "job_deduped" if deduped else "job_submitted",
            job_id=job_id, label=spec.job_id, fingerprint=fingerprint)
        return {"job_id": job_id, "label": spec.job_id,
                "deduped": deduped}

    def submit_swarm(self, spec: JobSpec, num_shards: int) -> dict:
        """Server-side shard expansion: enqueue *spec* as shard jobs
        plus one ``waiting`` parent the merger will finish.

        A cached merged verdict short-circuits to a ``done`` parent
        with zero shard work; a kernel that cannot be planned (wrong
        engine, compile failure) falls back to one monolithic job —
        the caller always gets exactly one parent job back.
        """
        spec.validate()
        parent_key = swarm_cache_key(spec, num_shards)
        if self.cache is not None:
            payload = self.cache.get(parent_key)
            if payload is not None:
                cached = JobResult(
                    job_id=spec.job_id, status=JobStatus.CACHED,
                    engine=spec.engine, cached=True,
                    cache_key=parent_key,
                    verdict=payload.get("verdict"),
                    check_stats=payload.get("check_stats"))
                job_id, deduped = self.store.submit(
                    spec, parent_key, state=JobState.DONE,
                    result=cached.to_dict())
                self.telemetry.emit("cache_hit", job_id=job_id,
                                    cache_key=parent_key)
                return {"job_id": job_id, "label": spec.job_id,
                        "deduped": deduped, "swarm": num_shards,
                        "shards": []}
        try:
            shard_specs, selectors, info = plan_shard_specs(
                spec, num_shards)
        except SwarmPlanError as exc:
            self.telemetry.emit("swarm_fallback", job_id=spec.job_id,
                                reason=str(exc))
            return self.submit_spec(spec)
        shard_jobs = [self.submit_spec(s) for s in shard_specs]
        spec.meta = dict(spec.meta, swarm={
            "num_shards": num_shards,
            "total_pairs": info["total_pairs"],
            "shards": [{"job_id": job["job_id"],
                        "selector": sel.to_dict()}
                       for job, sel in zip(shard_jobs, selectors)],
        })
        job_id, deduped = self.store.submit(spec, parent_key,
                                            state=JobState.WAITING)
        self.telemetry.emit(
            "swarm_planned", job_id=job_id, label=spec.job_id,
            shards=info["shards"], total_pairs=info["total_pairs"],
            groups=info["groups"], deduped=deduped)
        return {"job_id": job_id, "label": spec.job_id,
                "deduped": deduped, "swarm": num_shards,
                "shards": [j["job_id"] for j in shard_jobs]}

    def submit_request(self, body: dict) -> List[dict]:
        """One ``POST /submit`` body → one or more enqueued jobs."""
        if not isinstance(body, dict):
            raise JobValidationError(
                "invalid submit body: expected a JSON object")
        data = dict(body)
        swarm = data.pop("swarm", None)
        if swarm is not None and (isinstance(swarm, bool)
                                  or not isinstance(swarm, int)
                                  or swarm < 1):
            raise JobValidationError(
                "'swarm' must be a positive integer shard count")
        submit = ((lambda spec: self.submit_swarm(spec, swarm))
                  if swarm else self.submit_spec)
        if "suite" in data:
            suite = data["suite"]
            if suite != "streams" and suite not in SUITES:
                raise JobValidationError(
                    f"unknown suite {suite!r} (expected one of "
                    f"{', '.join(sorted(SUITES) + ['streams'])})")
            engine = data.get("engine", "sesa")
            return [submit(spec)
                    for spec in builtin_jobs(suite, engine)]
        if "source" not in data:
            raise JobValidationError(
                "invalid submit body: needs 'source' or 'suite'")
        data.setdefault("job_id", data.get("label") or "adhoc")
        data.pop("label", None)
        return [submit(JobSpec.from_dict(data))]

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload: liveness plus enough vitals for a
        probe to tell a healthy daemon from a wedged one — tool version
        (deploy skew), uptime, queue depth, and live worker count."""
        stats = self.store.queue_stats()
        return {
            "ok": True,
            "version": TOOL_VERSION,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue_depth": stats["depth"],
            "workers": {
                "total": len(self.workers),
                "alive": sum(1 for w in self.workers if w.alive),
            },
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, serve_http: bool = True) -> "Daemon":
        # recover leases orphaned by a previous daemon's hard death
        # before any worker claims — jobs come back queued immediately
        # instead of after one TTL
        self.reaper.sweep()
        for worker in self.workers:
            worker.start()
        self.reaper.start()
        self.merger.start()
        self.sampler.start()
        if serve_http:
            handler = _make_handler(self)
            self.server = ThreadingHTTPServer((self.host, self.port),
                                              handler)
            self.server.daemon_threads = True
            self.port = self.server.server_address[1]
            self._server_thread = threading.Thread(
                target=self.server.serve_forever, daemon=True,
                name="daemon-http")
            self._server_thread.start()
        self.telemetry.emit("daemon_started", workers=len(self.workers),
                            lease_ttl=self.lease_ttl,
                            url=self.url if serve_http else None)
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop claiming, finish in-flight jobs,
        then tear the API down."""
        for worker in self.workers:
            worker._stop.set()     # stop new claims on every worker…
        if drain:
            for worker in self.workers:
                worker.stop()      # …then wait for in-flight jobs
        self.sampler.stop()
        self.merger.stop()
        self.reaper.stop()
        if self.server is not None:
            self.server.shutdown()
            self.server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
        self.telemetry.emit(
            "daemon_stopped",
            jobs_done=sum(w.jobs_done for w in self.workers))
        self.telemetry.close()
        self.store.close()

    def wait_idle(self, timeout: float = 60.0,
                  poll: float = 0.05) -> bool:
        """Block until the queue has no runnable work (test helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            counts = self.store.counts()
            if not counts.get(JobState.QUEUED) \
                    and not counts.get(JobState.LEASED) \
                    and not counts.get(JobState.WAITING):
                return True
            time.sleep(poll)
        return False


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------

def _make_handler(daemon: Daemon):
    """A request-handler class bound to *daemon* (http.server wants a
    class, not an instance)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-daemon"

        # quiet: requests go to telemetry, not stderr
        def log_message(self, *args) -> None:
            pass

        # -- helpers ---------------------------------------------------

        def _json(self, code: int, payload: dict) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise JobValidationError("empty request body")
            try:
                return json.loads(raw)
            except ValueError as exc:
                raise JobValidationError(
                    f"request body is not JSON: {exc}") from None

        def _route(self) -> Tuple[str, dict]:
            path, _, query = self.path.partition("?")
            params = {}
            for pair in query.split("&"):
                if "=" in pair:
                    key, value = pair.split("=", 1)
                    params[key] = value
            return path.rstrip("/") or "/", params

        # -- verbs -----------------------------------------------------

        def do_POST(self) -> None:
            path, _params = self._route()
            try:
                if path == "/submit":
                    jobs = daemon.submit_request(self._read_body())
                    self._json(200, {"jobs": jobs})
                else:
                    self._json(404, {"error": f"no such endpoint "
                                              f"{path!r}"})
            except JobValidationError as exc:
                self._json(400, {"error": str(exc)})
            except Exception as exc:   # keep the server alive
                self._json(500, {"error": f"{type(exc).__name__}: "
                                          f"{exc}"})

        def do_GET(self) -> None:
            path, params = self._route()
            try:
                if path.startswith("/status/"):
                    self._job_endpoint(path[len("/status/"):],
                                       want_result=False)
                elif path.startswith("/result/"):
                    self._job_endpoint(path[len("/result/"):],
                                       want_result=True)
                elif path == "/queue":
                    self._queue()
                elif path == "/stream":
                    self._stream(params)
                elif path == "/healthz":
                    self._json(200, daemon.health())
                else:
                    self._json(404, {"error": f"no such endpoint "
                                              f"{path!r}"})
            except (BrokenPipeError, ConnectionResetError):
                pass   # client went away mid-stream
            except Exception as exc:
                self._json(500, {"error": f"{type(exc).__name__}: "
                                          f"{exc}"})

        # -- endpoints -------------------------------------------------

        def _job_endpoint(self, job_id: str, want_result: bool) -> None:
            job = daemon.store.get(job_id)
            if job is None:
                self._json(404, {"error": f"unknown job {job_id!r}"})
                return
            status = job.status_dict()
            status["label"] = job.spec.get("job_id")
            swarm = (job.spec.get("meta") or {}).get("swarm")
            if swarm:
                status["swarm"] = {
                    "num_shards": swarm.get("num_shards"),
                    "shards": [s["job_id"]
                               for s in swarm.get("shards", [])],
                }
            if not want_result:
                self._json(200, status)
            elif not job.terminal:
                # 202: accepted but not done — poll again
                self._json(202, status)
            else:
                status["result"] = job.result
                self._json(200, status)

        def _queue(self) -> None:
            stats = daemon.store.queue_stats()
            stats["workers"] = {
                w.worker_id: dict(w.stats(), alive=w.alive)
                for w in daemon.workers}
            stats["reaper"] = {"reclaimed": daemon.reaper.reclaimed,
                               "dead": daemon.reaper.killed}
            stats["merger"] = {"merged": daemon.merger.merged}
            if daemon.cache is not None:
                stats["cache"] = daemon.cache.stats()
            self._json(200, stats)

        def _stream(self, params: dict) -> None:
            """NDJSON telemetry tail. ``since`` skips the first N
            events; ``follow`` keeps the connection open that many
            seconds, streaming events as they arrive."""
            try:
                since = int(params.get("since", 0))
                follow = float(params.get("follow", 0))
            except ValueError:
                self._json(400, {"error": "since/follow must be "
                                          "numeric"})
                return
            self.send_response(200)
            self.send_header("Content-Type",
                             "application/x-ndjson")
            # length unknown up front: close delimits the stream
            self.send_header("Connection", "close")
            self.end_headers()
            deadline = time.monotonic() + follow
            index = max(0, since)
            while True:
                events = daemon.telemetry.events[index:]
                for event in events:
                    line = json.dumps(dict(event, i=index),
                                      sort_keys=True)
                    self.wfile.write(line.encode("utf-8") + b"\n")
                    index += 1
                self.wfile.flush()
                if time.monotonic() >= deadline:
                    return
                time.sleep(0.05)

    return Handler
