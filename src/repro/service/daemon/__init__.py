"""Persistent race-check daemon: durable queue, leased workers, HTTP API.

This package promotes the one-shot batch service into a long-running
multi-tenant service (the ROADMAP's "persistent analysis daemon"):

* :mod:`~repro.service.daemon.store` — SQLite-backed durable
  :class:`JobStore` (``queued → leased → done/failed/dead``),
  idempotent submits keyed on the content-addressed cache fingerprint;
* :mod:`~repro.service.daemon.lease` — time-bounded lease protocol:
  :class:`Heartbeat` renewal and the expiry :class:`Reaper` that
  requeues crashed workers' jobs;
* :mod:`~repro.service.daemon.worker` — :class:`WorkerDaemon` claim
  loops running checks in fault-isolated child processes, plus the
  :class:`QueueSampler` health emitter;
* :mod:`~repro.service.daemon.api` — the HTTP/JSON API
  (``/submit /status /result /queue /stream``) and the one-process
  :class:`Daemon` supervisor behind `repro serve`;
* :mod:`~repro.service.daemon.client` — stdlib :class:`DaemonClient`
  used by `repro submit/status/result/queue`.

Minimal in-process use (tests, benchmarks)::

    daemon = Daemon(db_path="q.sqlite3", cache_dir=".repro-cache",
                    workers=4).start(serve_http=False)
    job = daemon.submit_spec(spec)
    daemon.wait_idle()
    print(daemon.store.get(job["job_id"]).result)
    daemon.stop()
"""
from .api import Daemon, SwarmMerger
from .client import (
    DaemonClient, DaemonError, DaemonUnavailable, format_result_line,
)
from .lease import DEFAULT_LEASE_TTL, Heartbeat, Reaper
from .store import JobRow, JobStore
from .worker import QueueSampler, WorkerDaemon

__all__ = [
    "Daemon", "DaemonClient", "DaemonError", "DaemonUnavailable",
    "DEFAULT_LEASE_TTL", "Heartbeat", "JobRow", "JobStore",
    "QueueSampler", "Reaper", "SwarmMerger", "WorkerDaemon",
    "format_result_line",
]
