"""Lease upkeep: heartbeat renewal and the expiry reaper.

A worker holds a job under a *time-bounded lease* — liveness is proven
by renewing the deadline, not by the worker process existing. Two small
background threads implement the protocol:

* :class:`Heartbeat` — owned by a worker while a job runs; renews the
  lease every ``interval`` seconds and flips :attr:`lost` if the store
  refuses a renewal (meaning the reaper already reclaimed the job —
  the worker's result would be a duplicate and must be dropped).
* :class:`Reaper` — owned by the daemon; periodically sweeps leases
  whose deadline passed (crashed/hung/SIGKILLed workers renew nothing)
  and either requeues the job for another attempt or marks it ``dead``
  when the budget is spent.

The TTL arithmetic: a worker renews every ``ttl / 3`` seconds, so a
healthy worker has two renewal opportunities of slack before the
reaper may touch its job; the reaper sweeps at ``ttl / 2``, so a dead
worker's job is back in the queue at most ``1.5 * ttl`` after its last
renewal.
"""
from __future__ import annotations

import threading
from typing import Callable, Optional

from ..jobs import JobState
from ..telemetry import Telemetry
from .store import JobStore

#: default lease time-to-live (seconds); CLI-tunable via --lease-ttl
DEFAULT_LEASE_TTL = 30.0


def heartbeat_interval(lease_ttl: float) -> float:
    return max(0.05, lease_ttl / 3.0)


def reap_interval(lease_ttl: float) -> float:
    return max(0.05, lease_ttl / 2.0)


class Heartbeat:
    """Renews one worker's lease on one job until stopped."""

    def __init__(self, store: JobStore, job_id: str, owner: str,
                 lease_ttl: float,
                 interval: Optional[float] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.store = store
        self.job_id = job_id
        self.owner = owner
        self.lease_ttl = lease_ttl
        self.interval = (heartbeat_interval(lease_ttl)
                         if interval is None else interval)
        self.telemetry = telemetry
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"heartbeat-{job_id}")

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            ok = self.store.heartbeat(self.job_id, self.owner,
                                      self.lease_ttl)
            if self.telemetry is not None and ok:
                self.telemetry.emit("lease_renewed",
                                    job_id=self.job_id,
                                    worker=self.owner)
            if not ok:
                # the reaper took the job from us — stop renewing and
                # let the worker discover `lost` when it finishes
                self.lost = True
                return

    def __enter__(self) -> "Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class Reaper:
    """Periodic sweep of expired leases for the whole queue."""

    def __init__(self, store: JobStore, lease_ttl: float,
                 interval: Optional[float] = None,
                 telemetry: Optional[Telemetry] = None,
                 on_reclaim: Optional[Callable[[str, str], None]] = None,
                 ) -> None:
        self.store = store
        self.interval = (reap_interval(lease_ttl)
                         if interval is None else interval)
        self.telemetry = telemetry
        self.on_reclaim = on_reclaim
        self.reclaimed = 0
        self.killed = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="lease-reaper")

    def sweep(self) -> int:
        """One pass; returns how many leases were reclaimed."""
        transitions = self.store.reap_expired()
        for job_id, new_state in transitions:
            if new_state == JobState.QUEUED:
                self.reclaimed += 1
            else:
                self.killed += 1
            if self.telemetry is not None:
                self.telemetry.emit("lease_expired", job_id=job_id,
                                    requeued=new_state == JobState.QUEUED)
                if new_state == JobState.QUEUED:
                    self.telemetry.emit("job_requeued", job_id=job_id,
                                        reason="lease_expired")
            if self.on_reclaim is not None:
                self.on_reclaim(job_id, new_state)
        return len(transitions)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sweep()

    def start(self) -> "Reaper":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
