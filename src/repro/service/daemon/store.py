"""Durable job queue: SQLite-backed :class:`JobStore`.

The store is the single source of truth for the daemon — the API
process, every worker, and the reaper all talk to the same database
file, so any of them can crash and restart without losing work. Jobs
move ``queued → leased → done/failed``, with crash recovery folded
into the state machine: a leased job whose lease deadline passes is
*reclaimed* (back to ``queued``) until its attempt budget is spent,
after which it is ``dead``.

Concurrency model: one connection per thread (SQLite connections are
not thread-safe), WAL journal so readers never block the writer, and
``BEGIN IMMEDIATE`` around every state transition so claim/complete/
reap are serialised by the database itself — no in-process locks, which
is what lets workers live in *other processes* (or other machines on a
shared filesystem) and still claim safely.

Deduplication: submits are keyed on the :mod:`~repro.service.cache`
content fingerprint (canonical IR + config + engine + version). A
second submit of work that is already ``queued``/``leased``/``done``
returns the existing job id — many clients asking for the same check
collapse to one solver run, and all of them poll the same result.
"""
from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..jobs import JobSpec, JobState

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id         TEXT PRIMARY KEY,
    fingerprint    TEXT NOT NULL,
    spec           TEXT NOT NULL,
    state          TEXT NOT NULL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL DEFAULT 2,
    submitted_at   REAL NOT NULL,
    updated_at     REAL NOT NULL,
    lease_owner    TEXT,
    lease_deadline REAL,
    result         TEXT,
    error          TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs(state);
CREATE INDEX IF NOT EXISTS idx_jobs_fingerprint ON jobs(fingerprint);
CREATE INDEX IF NOT EXISTS idx_jobs_deadline ON jobs(lease_deadline);
"""


@dataclass
class JobRow:
    """One job as stored — spec plus queue bookkeeping."""

    job_id: str
    fingerprint: str
    spec: dict
    state: str
    attempts: int
    max_attempts: int
    submitted_at: float
    updated_at: float
    lease_owner: Optional[str] = None
    lease_deadline: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def status_dict(self, now: Optional[float] = None) -> dict:
        """The ``GET /status`` payload (no result body)."""
        now = time.time() if now is None else now
        out = {
            "job_id": self.job_id, "state": self.state,
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "age_seconds": round(now - self.submitted_at, 3),
            "terminal": self.terminal,
            "error": self.error,
        }
        if self.state == JobState.LEASED:
            out["lease"] = {
                "owner": self.lease_owner,
                "deadline_in_seconds":
                    round((self.lease_deadline or now) - now, 3),
            }
        return out


class JobStore:
    """The durable queue. All methods are safe to call from any thread
    of any process sharing the database file."""

    def __init__(self, db_path: str,
                 default_max_attempts: int = 2) -> None:
        self.db_path = db_path
        self.default_max_attempts = max(1, default_max_attempts)
        self._local = threading.local()
        parent = os.path.dirname(os.path.abspath(db_path))
        os.makedirs(parent, exist_ok=True)
        self._conn().executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.db_path, timeout=30.0)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            self._local.conn = conn
        return conn

    @contextmanager
    def _tx(self):
        """``BEGIN IMMEDIATE`` transaction scope (the write lock is
        taken up front, so read-then-update sequences are atomic)."""
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn.cursor()
        except BaseException:
            conn.rollback()
            raise
        else:
            conn.commit()

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # ------------------------------------------------------------------
    # submit / read
    # ------------------------------------------------------------------

    @staticmethod
    def _row_to_job(row: sqlite3.Row) -> JobRow:
        return JobRow(
            job_id=row["job_id"], fingerprint=row["fingerprint"],
            spec=json.loads(row["spec"]), state=row["state"],
            attempts=row["attempts"], max_attempts=row["max_attempts"],
            submitted_at=row["submitted_at"],
            updated_at=row["updated_at"],
            lease_owner=row["lease_owner"],
            lease_deadline=row["lease_deadline"],
            result=(json.loads(row["result"]) if row["result"]
                    else None),
            error=row["error"])

    def submit(self, spec: JobSpec, fingerprint: str,
               max_attempts: Optional[int] = None,
               state: str = JobState.QUEUED,
               result: Optional[dict] = None,
               ) -> Tuple[str, bool]:
        """Enqueue *spec*; returns ``(job_id, deduped)``.

        Idempotent on *fingerprint*: if an equivalent job is already
        queued, leased, waiting, or done, its id is returned and
        nothing is inserted. Jobs that ended ``failed``/``dead`` do NOT
        block a resubmit — the caller may have fixed the environment.

        *state* defaults to ``queued``; swarm parents are inserted
        ``waiting`` (no worker ever claims them — the merger finishes
        them once their shard jobs are terminal), and a cached merged
        verdict can be inserted directly ``done`` with *result*.
        """
        now = time.time()
        job_id = "job-" + uuid.uuid4().hex[:12]
        with self._tx() as cur:
            cur.execute(
                "SELECT job_id FROM jobs WHERE fingerprint = ? AND "
                "state IN (?, ?, ?, ?) ORDER BY submitted_at LIMIT 1",
                (fingerprint,) + JobState.SHARABLE)
            row = cur.fetchone()
            if row is not None:
                return row["job_id"], True
            cur.execute(
                "INSERT INTO jobs (job_id, fingerprint, spec, state, "
                "attempts, max_attempts, submitted_at, updated_at, "
                "result) VALUES (?, ?, ?, ?, 0, ?, ?, ?, ?)",
                (job_id, fingerprint, json.dumps(spec.to_dict()),
                 state, max_attempts or self.default_max_attempts,
                 now, now,
                 json.dumps(result) if result is not None else None))
        return job_id, False

    def get(self, job_id: str) -> Optional[JobRow]:
        cur = self._conn().execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,))
        row = cur.fetchone()
        return self._row_to_job(row) if row is not None else None

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 100) -> List[JobRow]:
        if state is None:
            cur = self._conn().execute(
                "SELECT * FROM jobs ORDER BY submitted_at LIMIT ?",
                (limit,))
        else:
            cur = self._conn().execute(
                "SELECT * FROM jobs WHERE state = ? "
                "ORDER BY submitted_at LIMIT ?", (state, limit))
        return [self._row_to_job(r) for r in cur.fetchall()]

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------

    def claim(self, owner: str,
              lease_ttl: float) -> Optional[JobRow]:
        """Atomically lease the oldest queued job to *owner*."""
        now = time.time()
        with self._tx() as cur:
            cur.execute(
                "SELECT * FROM jobs WHERE state = ? "
                "ORDER BY submitted_at LIMIT 1", (JobState.QUEUED,))
            row = cur.fetchone()
            if row is None:
                return None
            cur.execute(
                "UPDATE jobs SET state = ?, lease_owner = ?, "
                "lease_deadline = ?, attempts = attempts + 1, "
                "updated_at = ? WHERE job_id = ?",
                (JobState.LEASED, owner, now + lease_ttl, now,
                 row["job_id"]))
        job = self._row_to_job(row)
        job.state = JobState.LEASED
        job.lease_owner = owner
        job.lease_deadline = now + lease_ttl
        job.attempts += 1
        return job

    def heartbeat(self, job_id: str, owner: str,
                  lease_ttl: float) -> bool:
        """Extend *owner*'s lease; False means the lease was lost
        (expired + reclaimed, or completed elsewhere) and the worker
        must abandon the job."""
        now = time.time()
        with self._tx() as cur:
            cur.execute(
                "UPDATE jobs SET lease_deadline = ?, updated_at = ? "
                "WHERE job_id = ? AND state = ? AND lease_owner = ?",
                (now + lease_ttl, now, job_id, JobState.LEASED, owner))
            return cur.rowcount == 1

    def complete(self, job_id: str, owner: str, result: dict,
                 state: str = JobState.DONE,
                 error: Optional[str] = None) -> bool:
        """Record a terminal outcome; only the lease owner may write
        (a reclaimed zombie's late result is dropped)."""
        now = time.time()
        with self._tx() as cur:
            cur.execute(
                "UPDATE jobs SET state = ?, result = ?, error = ?, "
                "lease_owner = NULL, lease_deadline = NULL, "
                "updated_at = ? "
                "WHERE job_id = ? AND state = ? AND lease_owner = ?",
                (state, json.dumps(result), error, now,
                 job_id, JobState.LEASED, owner))
            return cur.rowcount == 1

    def finish_waiting(self, job_id: str, result: dict,
                       state: str = JobState.DONE,
                       error: Optional[str] = None) -> bool:
        """Resolve a ``waiting`` swarm parent to a terminal state.

        Parents are never leased — no worker runs them — so the usual
        owner check in :meth:`complete` does not apply; the guard here
        is the state itself (only one merger transition can win)."""
        now = time.time()
        with self._tx() as cur:
            cur.execute(
                "UPDATE jobs SET state = ?, result = ?, error = ?, "
                "updated_at = ? WHERE job_id = ? AND state = ?",
                (state, json.dumps(result), error, now,
                 job_id, JobState.WAITING))
            return cur.rowcount == 1

    def release(self, job_id: str, owner: str,
                error: Optional[str] = None) -> str:
        """Give a leased job back after a worker-side crash: requeue
        while attempts remain, else ``dead``. Returns the new state
        ('' when the lease was already lost)."""
        now = time.time()
        with self._tx() as cur:
            cur.execute(
                "SELECT attempts, max_attempts FROM jobs "
                "WHERE job_id = ? AND state = ? AND lease_owner = ?",
                (job_id, JobState.LEASED, owner))
            row = cur.fetchone()
            if row is None:
                return ""
            new_state = JobState.QUEUED \
                if row["attempts"] < row["max_attempts"] \
                else JobState.DEAD
            cur.execute(
                "UPDATE jobs SET state = ?, lease_owner = NULL, "
                "lease_deadline = NULL, error = ?, updated_at = ? "
                "WHERE job_id = ?",
                (new_state, error, now, job_id))
        return new_state

    def reap_expired(self,
                     now: Optional[float] = None) -> List[Tuple[str, str]]:
        """Reclaim every lease whose deadline has passed. Returns
        ``[(job_id, new_state), ...]`` — ``queued`` for retries,
        ``dead`` once the attempt budget is spent."""
        now = time.time() if now is None else now
        reclaimed: List[Tuple[str, str]] = []
        with self._tx() as cur:
            cur.execute(
                "SELECT job_id, attempts, max_attempts FROM jobs "
                "WHERE state = ? AND lease_deadline < ?",
                (JobState.LEASED, now))
            for row in cur.fetchall():
                new_state = JobState.QUEUED \
                    if row["attempts"] < row["max_attempts"] \
                    else JobState.DEAD
                error = None if new_state == JobState.QUEUED else \
                    (f"lease expired after {row['attempts']} "
                     f"attempt(s); retry budget exhausted")
                cur.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL, "
                    "lease_deadline = NULL, error = ?, updated_at = ? "
                    "WHERE job_id = ?",
                    (new_state, error, now, row["job_id"]))
                reclaimed.append((row["job_id"], new_state))
        return reclaimed

    # ------------------------------------------------------------------
    # queue health
    # ------------------------------------------------------------------

    def counts(self) -> dict:
        cur = self._conn().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state")
        return {row["state"]: row["n"] for row in cur.fetchall()}

    def queue_stats(self, now: Optional[float] = None) -> dict:
        """The health snapshot behind ``GET /queue`` and the
        ``queue_sample`` telemetry event."""
        now = time.time() if now is None else now
        counts = self.counts()
        cur = self._conn().execute(
            "SELECT MIN(submitted_at) AS oldest FROM jobs "
            "WHERE state = ?", (JobState.QUEUED,))
        row = cur.fetchone()
        oldest = row["oldest"] if row is not None else None
        cur = self._conn().execute(
            "SELECT lease_owner, COUNT(*) AS n, "
            "MIN(lease_deadline) AS next_deadline "
            "FROM jobs WHERE state = ? GROUP BY lease_owner",
            (JobState.LEASED,))
        leases = {row["lease_owner"]:
                  {"jobs": row["n"],
                   "next_deadline_in_seconds":
                       round(row["next_deadline"] - now, 3)}
                  for row in cur.fetchall()}
        return {
            "depth": counts.get(JobState.QUEUED, 0),
            "leased": counts.get(JobState.LEASED, 0),
            "waiting": counts.get(JobState.WAITING, 0),
            "by_state": counts,
            "oldest_age_seconds": (round(now - oldest, 3)
                                   if oldest is not None else None),
            "leases": leases,
        }
