"""Worker daemons: claim → run isolated → heartbeat → record.

A :class:`WorkerDaemon` is one long-lived claim loop. Each claimed job
runs in a *fresh forked process* (the same
:func:`~repro.service.runner.run_job_isolated` primitive the batch
scheduler uses), so an analysis crash kills the child, not the worker;
a :class:`~repro.service.daemon.lease.Heartbeat` thread renews the
lease while the child runs, so only a worker that dies *whole*
(SIGKILL, OOM, power loss) lets the lease expire — and then the reaper
requeues the job for someone else.

Outcome → state mapping (the worker's core policy):

* payload ``done``            → ``done`` (result cached for dedup)
* cache hit on claim          → ``done`` immediately, zero solver work
* payload ``error``           → ``failed`` — the runner caught a
  deterministic analysis/validation failure; retrying wastes budget
* hard timeout                → ``failed`` — equally deterministic
* child **crash**             → released back: ``queued`` while
  attempts remain, ``dead`` after
* heartbeat lost              → result *dropped* — the reaper already
  gave the job away; writing would race the new owner
"""
from __future__ import annotations

import os
import threading
import time
from typing import Optional

from ..cache import ResultCache
from ..jobs import JobResult, JobState, JobStatus
from ..runner import Runner, execute_job, run_job_isolated
from ..telemetry import Telemetry
from .lease import DEFAULT_LEASE_TTL, Heartbeat
from .store import JobRow, JobStore

#: how long an idle worker sleeps between claim attempts
DEFAULT_POLL_INTERVAL = 0.2


class WorkerDaemon:
    """One claim-loop worker (usually a thread in the serve process,
    but nothing here assumes that — a separate process pointed at the
    same database behaves identically)."""

    def __init__(self, store: JobStore,
                 worker_id: Optional[str] = None,
                 cache: Optional[ResultCache] = None,
                 telemetry: Optional[Telemetry] = None,
                 runner: Runner = execute_job,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 timeout_seconds: Optional[float] = None,
                 isolate: bool = True) -> None:
        self.store = store
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.cache = cache
        self.telemetry = telemetry or Telemetry()
        self.runner = runner
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        self.timeout_seconds = timeout_seconds
        self.isolate = isolate
        self.jobs_done = 0
        self.tier_counts: dict = {}
        self.started_at = time.time()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # health / throughput accounting (feeds ``queue_sample``)
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        elapsed = max(time.time() - self.started_at, 1e-9)
        return {"jobs": self.jobs_done,
                "jobs_per_sec": round(self.jobs_done / elapsed, 3),
                "tiers": dict(self.tier_counts)}

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # one job
    # ------------------------------------------------------------------

    def _record(self, job: JobRow, result: JobResult,
                state: str, lost: bool,
                error: Optional[str] = None) -> None:
        if lost:
            # the reaper reassigned the job mid-run; our verdict may
            # already disagree with the new owner's bookkeeping
            self.telemetry.emit("result_dropped", job_id=job.job_id,
                                worker=self.worker_id, state=state)
            return
        wrote = self.store.complete(job.job_id, self.worker_id,
                                    result.to_dict(), state=state,
                                    error=error)
        tier = (result.check_stats or {}).get("tier")
        if wrote:
            self.jobs_done += 1
            if tier is not None:
                self.tier_counts[tier] = self.tier_counts.get(tier, 0) + 1
        self.telemetry.emit(
            "job_finished", job_id=job.job_id, status=result.status,
            state=state if wrote else "lost", worker=self.worker_id,
            attempts=job.attempts, cached=result.cached,
            elapsed_seconds=round(result.elapsed_seconds, 6),
            tier=tier,
            check_stats=result.check_stats,
            issues=result.issue_tags() if result.verdict else None)
        if wrote and state == JobState.DONE and result.verdict \
                and "stream" in result.verdict:
            # the stream job ran in a child process; re-emit the merge
            # event into the daemon's durable trace (cached verdicts
            # included — a replayed merge is still a merge)
            stream = result.verdict.get("stream") or {}
            stats = stream.get("stats") or {}
            self.telemetry.emit(
                "stream_merged", job_id=job.job_id,
                worker=self.worker_id,
                program=(stream.get("program") or {}).get("name"),
                launches=len(stream.get("launches") or ()),
                inter_launch_races=len(
                    stream.get("inter_launch_races") or ()),
                launch_cache_hits=stats.get("launch_cache_hits"),
                cached=result.cached)

    def process_one(self) -> bool:
        """Claim and fully process one job; False when the queue had
        nothing runnable."""
        job = self.store.claim(self.worker_id, self.lease_ttl)
        if job is None:
            return False
        self.telemetry.emit("lease_claimed", job_id=job.job_id,
                            worker=self.worker_id,
                            attempt=job.attempts,
                            lease_ttl=self.lease_ttl)
        spec_dict = job.spec
        engine = spec_dict.get("engine", "sesa")
        if self.cache is not None \
                and spec_dict.get("solver_cache_dir") is None:
            # share the daemon's cache tree for solver warm-start
            # artifacts (a pure accelerator: not in the fingerprint)
            spec_dict = dict(spec_dict,
                             solver_cache_dir=self.cache.cache_dir)

        # dedup fast path: an identical submission already paid for
        # this verdict (possibly in a previous daemon's lifetime)
        if self.cache is not None:
            payload = self.cache.get(job.fingerprint)
            if payload is not None:
                self.telemetry.emit("cache_hit", job_id=job.job_id,
                                    cache_key=job.fingerprint)
                result = JobResult(
                    job_id=job.job_id, status=JobStatus.CACHED,
                    engine=engine, attempts=job.attempts, cached=True,
                    cache_key=job.fingerprint, elapsed_seconds=0.0,
                    verdict=payload.get("verdict"),
                    check_stats=payload.get("check_stats"),
                    inputs=payload.get("inputs"),
                    repair=payload.get("repair"))
                self._record(job, result, JobState.DONE, lost=False)
                return True
            self.telemetry.emit("cache_miss", job_id=job.job_id,
                                cache_key=job.fingerprint)

        self.telemetry.emit("job_started", job_id=job.job_id,
                            worker=self.worker_id, engine=engine,
                            cached=False)
        start = time.perf_counter()
        with Heartbeat(self.store, job.job_id, self.worker_id,
                       self.lease_ttl,
                       telemetry=self.telemetry) as beat:
            if self.isolate:
                outcome, payload = run_job_isolated(
                    spec_dict, self.runner, self.timeout_seconds)
            else:
                from ..runner import run_job_inline
                outcome, payload = run_job_inline(spec_dict, self.runner)
        elapsed = time.perf_counter() - start

        if outcome == "crash":
            if beat.lost:
                self.telemetry.emit("result_dropped", job_id=job.job_id,
                                    worker=self.worker_id, state="crash")
                return True
            new_state = self.store.release(
                job.job_id, self.worker_id,
                error=f"worker child crashed (exit code {payload}) "
                      f"on attempt {job.attempts}")
            self.telemetry.emit("job_requeued" if new_state ==
                                JobState.QUEUED else "job_dead",
                                job_id=job.job_id,
                                worker=self.worker_id,
                                exit_code=payload,
                                attempt=job.attempts)
            return True

        if outcome == "timeout":
            result = JobResult(
                job_id=job.job_id, status=JobStatus.TIMEOUT,
                engine=engine, attempts=job.attempts,
                elapsed_seconds=elapsed, cache_key=job.fingerprint,
                error=f"hard timeout after {self.timeout_seconds}s")
            self._record(job, result, JobState.FAILED, beat.lost,
                         error=result.error)
            return True

        status = payload.get("status", JobStatus.ERROR)
        result = JobResult(
            job_id=job.job_id, status=status, engine=engine,
            attempts=job.attempts, elapsed_seconds=elapsed,
            cache_key=job.fingerprint,
            verdict=payload.get("verdict"),
            check_stats=payload.get("check_stats"),
            inputs=payload.get("inputs"),
            repair=payload.get("repair"),
            error=payload.get("error"))
        if status == JobStatus.DONE:
            if self.cache is not None and not beat.lost:
                self.cache.put(job.fingerprint, payload)
            self._record(job, result, JobState.DONE, beat.lost)
        else:
            # deterministic failure (analysis error, validation error):
            # retrying cannot change the outcome
            self._record(job, result, JobState.FAILED, beat.lost,
                         error=result.error)
        return True

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Claim until stopped; an in-flight job is always finished
        (graceful drain) — stop only prevents *new* claims."""
        self.telemetry.emit("worker_started", worker=self.worker_id,
                            lease_ttl=self.lease_ttl)
        while not self._stop.is_set():
            worked = self.process_one()
            if not worked and self._stop.wait(self.poll_interval):
                break
        self.telemetry.emit("worker_stopped", worker=self.worker_id,
                            jobs_done=self.jobs_done)

    def start(self) -> "WorkerDaemon":
        self._thread = threading.Thread(
            target=self.run, daemon=True, name=self.worker_id)
        self._thread.start()
        return self

    def stop(self, join_timeout: Optional[float] = 60.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)


class QueueSampler:
    """Periodic ``queue_sample`` emitter — the daemon's vital signs.

    Each sample carries queue depth, leased count, oldest-job age and
    per-worker throughput in the exact schema
    :meth:`repro.service.telemetry.Telemetry.queue_sample` defines (and
    the batch scheduler reuses for its final summary).
    """

    def __init__(self, store: JobStore, telemetry: Telemetry,
                 workers, interval: float = 5.0) -> None:
        self.store = store
        self.telemetry = telemetry
        self.workers = list(workers)
        self.interval = interval
        self.samples = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="queue-sampler")

    def sample(self) -> dict:
        stats = self.store.queue_stats()
        self.samples += 1
        return self.telemetry.queue_sample(
            depth=stats["depth"], leased=stats["leased"],
            oldest_age_seconds=stats["oldest_age_seconds"],
            workers={w.worker_id: w.stats() for w in self.workers},
            by_state=stats["by_state"])

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "QueueSampler":
        # baseline sample before the periodic thread: a daemon that
        # drains its whole queue inside one ``interval`` still records
        # at least one queue_sample over its lifetime
        self.sample()
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        # flush one final sample so even a daemon that drains its queue
        # faster than ``interval`` leaves a terminal vital-signs record
        self.sample()
