"""Job model for the batch analysis service.

A :class:`JobSpec` is a fully serialisable description of one
``(kernel, LaunchConfig, engine)`` analysis — everything a worker
process needs to run the check from scratch. A :class:`JobResult` is
the equally serialisable outcome record: the scheduler guarantees one
result per submitted job, whatever happened to the worker (success,
analysis error, crash, or hard timeout).

Keeping both sides plain-data (dicts of str/int/list) is what lets the
scheduler ship jobs across process boundaries, the cache persist them
as JSON, and the telemetry trace replay them later.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

Dim3 = Tuple[int, int, int]


class JobStatus:
    """Lifecycle tags for a batch job (plain strings, JSON-friendly)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"          # analysis completed (races found or not)
    ERROR = "error"        # analysis raised / worker kept crashing
    TIMEOUT = "timeout"    # hard wall-clock kill by the scheduler
    CACHED = "cached"      # verdict served from the result cache

    #: statuses that mean "the batch has a verdict for this job"
    TERMINAL = (DONE, ERROR, TIMEOUT, CACHED)


class JobState:
    """Durable queue states for daemon jobs (:mod:`repro.service.daemon`).

    ``queued → leased → done|failed`` is the happy path; a crashed or
    vanished worker's lease expires and the job goes back to ``queued``
    until the retry budget is spent, after which it is ``dead``.
    """

    QUEUED = "queued"      # waiting for a worker lease
    LEASED = "leased"      # claimed by a worker under a live lease
    WAITING = "waiting"    # swarm parent: blocked on its shard jobs
    DONE = "done"          # verdict recorded (including cache hits)
    FAILED = "failed"      # deterministic analysis/validation failure
    DEAD = "dead"          # retry budget exhausted (crashes, expiries)

    #: states from which the job will never run again
    TERMINAL = (DONE, FAILED, DEAD)
    #: states under which a duplicate submit can piggyback on the job
    SHARABLE = (QUEUED, LEASED, WAITING, DONE)


class JobValidationError(ValueError):
    """A job spec that can never run: bad engine, empty source,
    non-positive dims, malformed value maps. Raised by
    :meth:`JobSpec.validate`; runners normalise it into a structured
    failed result instead of a traceback."""


#: engines a worker knows how to run (also re-exported by the runner)
ENGINE_NAMES = ("sesa", "gkleep", "gklee")

#: kinds of work a job spec can describe: a single-kernel analysis
#: (the default) or a whole multi-launch stream program
JOB_KINDS = ("kernel", "stream")


def _dim3(value) -> Dim3:
    if isinstance(value, int):
        return (value, 1, 1)
    t = tuple(int(v) for v in value)
    while len(t) < 3:
        t += (1,)
    return t  # type: ignore[return-value]


@dataclass
class JobSpec:
    """One schedulable kernel analysis."""

    job_id: str
    source: str
    kernel_name: Optional[str] = None
    engine: str = "sesa"
    grid_dim: Dim3 = (1, 1, 1)
    block_dim: Dim3 = (64, 1, 1)
    warp_size: int = 32
    warp_lockstep: bool = False
    check_oob: bool = True
    symbolic_inputs: Optional[List[str]] = None
    scalar_values: Dict[str, int] = field(default_factory=dict)
    array_sizes: Dict[str, int] = field(default_factory=dict)
    max_loop_splits: Optional[int] = None
    max_flows: Optional[int] = None
    max_steps: Optional[int] = None
    #: soft (in-engine) wall-clock budget; the engine stops gracefully
    time_budget_seconds: Optional[float] = None
    #: solve race queries on incremental solver sessions (the default);
    #: False forces the one-shot path for differential runs
    incremental_solving: bool = True
    #: pre-solver pruning pipeline (summarization, disjointness buckets,
    #: pair memo); False forces raw enumeration for differential runs
    pair_pruning: bool = True
    #: static pre-screening tier (tier 0); False restores the exact
    #: single-tier pipeline for differential runs
    static_tier: bool = True
    #: also run the CEGIS barrier-repair loop and attach its outcome
    repair: bool = False
    #: Table III kernels need the synthetic CSR graph attached
    needs_concrete_graph: bool = False
    #: swarm shard descriptor (serialised ShardSelector): restrict the
    #: race check to one partition of the candidate-pair space. Part
    #: of the cache fingerprint — a shard verdict must never collide
    #: with the monolithic verdict of the same kernel.
    shard: Optional[dict] = None
    #: per-query SAT conflict budget override (portfolio variants)
    solver_conflict_budget: Optional[int] = None
    #: directory for cross-run solver warm-start artifacts (see
    #: :mod:`repro.smt.persist`). Deliberately NOT part of
    #: :meth:`config_fingerprint`: warm starts are a pure accelerator
    #: and must never influence which cache entry a verdict lands in.
    solver_cache_dir: Optional[str] = None
    #: what kind of work this spec describes (see :data:`JOB_KINDS`);
    #: ``stream`` jobs run a whole multi-launch program through
    #: :class:`repro.streams.StreamChecker` instead of one kernel
    kind: str = "kernel"
    #: serialised :meth:`repro.streams.StreamProgram.to_dict`
    #: (source-free: ``source`` holds the multi-kernel ``.cu`` text)
    stream_program: Optional[dict] = None
    #: free-form passthrough (suite/table tags, test fixtures, ...)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.grid_dim = _dim3(self.grid_dim)
        self.block_dim = _dim3(self.block_dim)

    def validate(self) -> None:
        """Reject specs that can never run (:class:`JobValidationError`).

        Catches the malformed-input class of failures *before* a worker
        process is spent on them: unknown engines, empty sources,
        degenerate launch geometry, non-integer value maps, negative
        budgets. Anything that passes here can still fail analysis, but
        it fails as a real analysis error, not an input error.
        """
        def bad(reason: str) -> None:
            raise JobValidationError(
                f"invalid job spec {self.job_id!r}: {reason}")

        if not self.job_id or not isinstance(self.job_id, str):
            raise JobValidationError(
                "invalid job spec: job_id must be a non-empty string")
        if self.engine not in ENGINE_NAMES:
            bad(f"unknown engine {self.engine!r} "
                f"(expected one of {', '.join(ENGINE_NAMES)})")
        if not isinstance(self.source, str) or not self.source.strip():
            bad("source is empty")
        for name, dim in (("grid_dim", self.grid_dim),
                          ("block_dim", self.block_dim)):
            if any(not isinstance(v, int) or v < 1 for v in dim):
                bad(f"{name} {dim!r} must be positive integers")
        if not isinstance(self.warp_size, int) or self.warp_size < 1:
            bad(f"warp_size {self.warp_size!r} must be a positive integer")
        for what, mapping in (("scalar_values", self.scalar_values),
                              ("array_sizes", self.array_sizes)):
            for key, value in mapping.items():
                if not isinstance(key, str) \
                        or not isinstance(value, int) \
                        or isinstance(value, bool):
                    bad(f"{what}[{key!r}] = {value!r} must map a "
                        f"parameter name to an integer")
        for what, value in (("max_loop_splits", self.max_loop_splits),
                            ("max_flows", self.max_flows),
                            ("max_steps", self.max_steps)):
            if value is not None \
                    and (not isinstance(value, int) or value < 1):
                bad(f"{what} {value!r} must be a positive integer")
        if self.time_budget_seconds is not None \
                and (not isinstance(self.time_budget_seconds, (int, float))
                     or self.time_budget_seconds <= 0):
            bad(f"time_budget_seconds {self.time_budget_seconds!r} "
                f"must be positive")
        if self.shard is not None:
            from ..sym.swarm import ShardSelector
            try:
                ShardSelector.from_dict(self.shard)
            except ValueError as exc:
                bad(str(exc))
        if self.solver_conflict_budget is not None \
                and (not isinstance(self.solver_conflict_budget, int)
                     or isinstance(self.solver_conflict_budget, bool)
                     or self.solver_conflict_budget < 0):
            bad(f"solver_conflict_budget "
                f"{self.solver_conflict_budget!r} must be a "
                f"non-negative integer")
        if self.kind not in JOB_KINDS:
            bad(f"unknown kind {self.kind!r} "
                f"(expected one of {', '.join(JOB_KINDS)})")
        if self.kind == "stream":
            if self.engine != "sesa":
                bad(f"stream jobs require the sesa engine, "
                    f"not {self.engine!r}")
            if not isinstance(self.stream_program, dict) \
                    or not self.stream_program.get("steps"):
                bad("stream jobs need a stream_program with steps")
        elif self.stream_program is not None:
            bad("stream_program is only valid with kind='stream'")

    @property
    def total_threads(self) -> int:
        gx, gy, gz = self.grid_dim
        bx, by, bz = self.block_dim
        return gx * gy * gz * bx * by * bz

    def launch_config(self):
        """Materialise the :class:`repro.sym.LaunchConfig` (worker side)."""
        from ..sym import LaunchConfig
        config = LaunchConfig(
            grid_dim=self.grid_dim, block_dim=self.block_dim,
            warp_size=self.warp_size, warp_lockstep=self.warp_lockstep,
            check_oob=self.check_oob,
            symbolic_inputs=(set(self.symbolic_inputs)
                             if self.symbolic_inputs is not None else None),
            scalar_values=dict(self.scalar_values),
            array_sizes=dict(self.array_sizes),
            time_budget_seconds=self.time_budget_seconds,
            incremental_solving=self.incremental_solving,
            pair_pruning=self.pair_pruning,
            static_tier=self.static_tier,
            shard=(dict(self.shard) if self.shard is not None else None),
            solver_conflict_budget=self.solver_conflict_budget,
            solver_cache_dir=self.solver_cache_dir)
        if self.max_loop_splits is not None:
            config.max_loop_splits = self.max_loop_splits
        if self.max_flows is not None:
            config.max_flows = self.max_flows
        if self.max_steps is not None:
            config.max_steps = self.max_steps
        if self.needs_concrete_graph:
            from ..kernels.lonestar import attach_concrete_graph
            attach_concrete_graph(config)
        return config

    def config_fingerprint(self) -> dict:
        """The configuration facts that determine the verdict — the
        cache key hashes this dict (canonical: sorted keys, no floats
        that vary run-to-run, no job identity)."""
        out = {
            "engine": self.engine,
            "kernel_name": self.kernel_name,
            "grid_dim": list(self.grid_dim),
            "block_dim": list(self.block_dim),
            "warp_size": self.warp_size,
            "warp_lockstep": self.warp_lockstep,
            "check_oob": self.check_oob,
            "symbolic_inputs": (sorted(self.symbolic_inputs)
                                if self.symbolic_inputs is not None
                                else None),
            "scalar_values": dict(sorted(self.scalar_values.items())),
            "array_sizes": dict(sorted(self.array_sizes.items())),
            "max_loop_splits": self.max_loop_splits,
            "max_flows": self.max_flows,
            "max_steps": self.max_steps,
            "needs_concrete_graph": self.needs_concrete_graph,
            # the budgets can turn a verdict into a T.O. verdict, so
            # they are part of the key
            "time_budget_seconds": self.time_budget_seconds,
            # the solving strategy shouldn't change verdicts, but the
            # point of the escape hatch is to verify exactly that — so
            # the two paths must not share cache entries
            "incremental_solving": self.incremental_solving,
            "pair_pruning": self.pair_pruning,
            # the tiers must agree on verdicts (the equivalence suite
            # enforces it), but the escape hatch exists to prove that —
            # so the two pipelines must not share cache entries
            "static_tier": self.static_tier,
            # a repair run produces strictly more output than a plain
            # check, so the two must not share cache entries
            "repair": self.repair,
            # a shard's verdict covers one partition only — it must
            # never be served as (or from) the whole kernel's verdict
            "shard": (dict(self.shard)
                      if self.shard is not None else None),
            "solver_conflict_budget": self.solver_conflict_budget,
        }
        if self.kind != "kernel":
            # added conditionally so every pre-existing kernel job keeps
            # its exact cache key; a stream job's launch sequence is
            # verdict-determining, so it must be part of the key
            out["kind"] = self.kind
            out["stream_program"] = self.stream_program
        return out

    def to_dict(self) -> dict:
        out = dict(self.config_fingerprint())
        out.update(job_id=self.job_id, source=self.source,
                   time_budget_seconds=self.time_budget_seconds,
                   solver_cache_dir=self.solver_cache_dir,
                   meta=dict(self.meta))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        if not isinstance(data, dict):
            raise JobValidationError(
                f"invalid job spec: expected an object, got "
                f"{type(data).__name__}")
        missing = [k for k in ("job_id", "source") if k not in data]
        if missing:
            raise JobValidationError(
                f"invalid job spec: missing field(s) "
                f"{', '.join(missing)}")
        try:
            return cls._from_dict(data)
        except JobValidationError:
            raise
        except (TypeError, ValueError) as exc:
            raise JobValidationError(
                f"invalid job spec {data.get('job_id')!r}: {exc}") \
                from None

    @classmethod
    def _from_dict(cls, data: dict) -> "JobSpec":
        return cls(
            job_id=data["job_id"], source=data["source"],
            kernel_name=data.get("kernel_name"),
            engine=data.get("engine", "sesa"),
            grid_dim=_dim3(data.get("grid_dim", (1, 1, 1))),
            block_dim=_dim3(data.get("block_dim", (64, 1, 1))),
            warp_size=data.get("warp_size", 32),
            warp_lockstep=data.get("warp_lockstep", False),
            check_oob=data.get("check_oob", True),
            symbolic_inputs=data.get("symbolic_inputs"),
            scalar_values=dict(data.get("scalar_values") or {}),
            array_sizes=dict(data.get("array_sizes") or {}),
            max_loop_splits=data.get("max_loop_splits"),
            max_flows=data.get("max_flows"),
            max_steps=data.get("max_steps"),
            time_budget_seconds=data.get("time_budget_seconds"),
            incremental_solving=data.get("incremental_solving", True),
            pair_pruning=data.get("pair_pruning", True),
            static_tier=data.get("static_tier", True),
            repair=data.get("repair", False),
            needs_concrete_graph=data.get("needs_concrete_graph", False),
            shard=data.get("shard"),
            solver_conflict_budget=data.get("solver_conflict_budget"),
            solver_cache_dir=data.get("solver_cache_dir"),
            kind=data.get("kind", "kernel"),
            stream_program=data.get("stream_program"),
            meta=dict(data.get("meta") or {}))


@dataclass
class JobResult:
    """The scheduler's per-job outcome record."""

    job_id: str
    status: str
    engine: str = "sesa"
    attempts: int = 1
    elapsed_seconds: float = 0.0
    cached: bool = False
    cache_key: Optional[str] = None
    #: ``AnalysisReport.to_dict()`` of the completed check (DONE/CACHED)
    verdict: Optional[dict] = None
    #: solver statistics (``CheckStats`` as a dict) when available
    check_stats: Optional[dict] = None
    #: {"symbolic": n, "total": m} input-symbolisation counts
    inputs: Optional[dict] = None
    #: ``RepairResult.to_dict()`` when the job ran with ``repair=True``
    repair: Optional[dict] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (JobStatus.DONE, JobStatus.CACHED)

    @property
    def has_issues(self) -> bool:
        if not self.verdict:
            return False
        races = [r for r in self.verdict.get("races", ())
                 if not r.get("benign")]
        return bool(races or self.verdict.get("oobs")
                    or self.verdict.get("assertion_failures"))

    def issue_tags(self) -> List[str]:
        """Paper-table style issue labels ("RW", "WW (Benign)", "OOB")."""
        tags: List[str] = []
        for race in (self.verdict or {}).get("races", ()):
            tag = race.get("kind", "?") + \
                (" (Benign)" if race.get("benign") else "")
            if tag not in tags:
                tags.append(tag)
        if (self.verdict or {}).get("oobs"):
            tags.append("OOB")
        return tags

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id, "status": self.status,
            "engine": self.engine, "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
            "cached": self.cached, "cache_key": self.cache_key,
            "verdict": self.verdict, "check_stats": self.check_stats,
            "inputs": self.inputs, "repair": self.repair,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        return cls(
            job_id=data["job_id"], status=data["status"],
            engine=data.get("engine", "sesa"),
            attempts=data.get("attempts", 1),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            cached=data.get("cached", False),
            cache_key=data.get("cache_key"),
            verdict=data.get("verdict"),
            check_stats=data.get("check_stats"),
            inputs=data.get("inputs"),
            repair=data.get("repair"),
            error=data.get("error"))
