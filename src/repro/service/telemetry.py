"""Structured telemetry for batch runs.

Every lifecycle transition of every job emits one JSON object — to an
in-memory list always, and to a JSONL trace file when a path is given.
The invariant consumers rely on: **exactly one ``job_started`` and one
``job_finished`` event per job**, bracketed by one ``batch_started`` /
``batch_finished`` pair; retries appear as ``job_retry`` events in
between, cache hits as ``cache_hit``.

Timestamps are wall-clock seconds relative to telemetry creation, so
traces from different hosts line up without clock agreement.

The daemon (:mod:`repro.service.daemon`) extends the vocabulary with
queue/lease lifecycle events — ``job_submitted`` / ``job_deduped`` /
``lease_claimed`` / ``lease_renewed`` / ``lease_expired`` /
``job_requeued`` — and periodic :meth:`queue_sample` snapshots; the
batch scheduler emits one final ``queue_sample`` in the same schema so
a single trace consumer understands both run modes. A long-running
daemon opens its trace in append mode (``mode="a"``) so restarts
extend the operational log instead of truncating it.
"""
from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

from .jobs import JobResult, JobStatus


class Telemetry:
    """Thread-safe JSONL event emitter + aggregate summariser."""

    def __init__(self, trace_path: Optional[str] = None,
                 mode: str = "w") -> None:
        self.trace_path = trace_path
        self.events: List[dict] = []
        self._lock = threading.Lock()
        self._epoch = time.monotonic()
        self._fh = open(trace_path, mode, encoding="utf-8") \
            if trace_path else None

    # ------------------------------------------------------------------

    def emit(self, event: str, **fields) -> dict:
        record = {"event": event,
                  "t": round(time.monotonic() - self._epoch, 6)}
        record.update(fields)
        with self._lock:
            self.events.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._fh.flush()
        return record

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def queue_sample(self, *, depth: int, leased: int,
                     oldest_age_seconds: Optional[float],
                     workers: Dict[str, dict], **extra) -> dict:
        """One ``queue_sample`` event — THE schema for queue health.

        ``depth`` runnable jobs waiting, ``leased`` jobs under a live
        lease, ``oldest_age_seconds`` age of the oldest waiting job
        (``None`` for an empty queue), ``workers`` per-worker
        ``{"jobs": n, "jobs_per_sec": r}`` throughput. Emitted
        periodically by the daemon and once, as the final summary, by
        the batch scheduler.
        """
        return self.emit(
            "queue_sample", depth=depth, leased=leased,
            oldest_age_seconds=(round(oldest_age_seconds, 3)
                                if oldest_age_seconds is not None
                                else None),
            workers=workers, **extra)

    # ------------------------------------------------------------------

    def select(self, event: str) -> List[dict]:
        with self._lock:
            return [e for e in self.events if e["event"] == event]

    # ------------------------------------------------------------------

    @staticmethod
    def tier_counts(results: List[JobResult]) -> Dict[str, int]:
        """Per-tier verdict counts (``{"static": n, "parametric": m}``).

        Jobs without check stats (errors, timeouts, stub runners) are
        not counted under either tier.
        """
        tiers: Dict[str, int] = {}
        for r in results:
            if r.check_stats:
                tier = r.check_stats.get("tier", "parametric")
                tiers[tier] = tiers.get(tier, 0) + 1
        return tiers

    @staticmethod
    def aggregate(results: List[JobResult]) -> dict:
        """Batch-level rollup of per-job records."""
        by_status: Dict[str, int] = {}
        queries = pairs = affine = 0
        issues = 0
        elapsed = 0.0
        for r in results:
            by_status[r.status] = by_status.get(r.status, 0) + 1
            elapsed += r.elapsed_seconds
            if r.check_stats:
                queries += r.check_stats.get("queries", 0)
                pairs += r.check_stats.get("pairs_considered", 0)
                affine += r.check_stats.get("by_affine", 0)
            if r.has_issues:
                issues += 1
        return {
            "jobs": len(results),
            "by_status": by_status,
            "by_tier": Telemetry.tier_counts(results),
            "jobs_with_issues": issues,
            "solver_queries": queries,
            "pairs_considered": pairs,
            "by_affine": affine,
            "analysis_seconds": round(elapsed, 3),
        }

    @staticmethod
    def summary_table(results: List[JobResult]) -> str:
        """Human-readable aggregate block for the CLI."""
        agg = Telemetry.aggregate(results)
        done = agg["by_status"].get(JobStatus.DONE, 0)
        cached = agg["by_status"].get(JobStatus.CACHED, 0)
        errors = agg["by_status"].get(JobStatus.ERROR, 0)
        timeouts = agg["by_status"].get(JobStatus.TIMEOUT, 0)
        lines = [
            f"jobs: {agg['jobs']}  "
            f"(done {done}, cached {cached}, "
            f"error {errors}, timeout {timeouts})",
            f"jobs with issues: {agg['jobs_with_issues']}",
            f"solver: {agg['solver_queries']} queries over "
            f"{agg['pairs_considered']} pairs "
            f"({agg['by_affine']} by affine fast path)",
            f"analysis time: {agg['analysis_seconds']:.2f}s "
            f"(sum over jobs)",
        ]
        if agg["by_tier"]:
            tiers = ", ".join(f"{tier} {n}" for tier, n
                              in sorted(agg["by_tier"].items()))
            lines.insert(2, f"tiers: {tiers}")
        return "\n".join(lines)
