"""Fault-isolating parallel scheduler for batch analysis jobs.

Design: N dispatcher threads pull jobs from a shared queue; each job
runs in its *own* worker process (fork + pipe) so that

* a hard wall-clock **timeout** can actually kill the work (terminate),
* a worker **crash** (segfault, ``os._exit``, OOM kill) is contained —
  the job is retried with backoff and, failing that, recorded as
  ``ERROR``; the batch always completes with one record per job,
* jobs never share interpreter state, so a corrupted analysis cannot
  poison its successors.

The process-per-job model (rather than a long-lived pool) is what the
robustness properties above rely on; fork on Linux makes the spawn
cost a few milliseconds, far below a typical analysis. ``isolate=False``
degrades to in-thread execution for environments without ``fork``
(timeouts then rely on the engine's soft budget).

Results come back in **submission order** regardless of completion
order, so batch output is deterministic modulo timing fields.
"""
from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .cache import ResultCache
from .jobs import JobResult, JobSpec, JobStatus
from .runner import execute_job, run_job_inline, run_job_isolated
from .telemetry import Telemetry

Runner = Callable[[dict], dict]


@dataclass
class BatchResult:
    """Everything one batch run produced."""

    jobs: List[JobResult]
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return all(r.status != JobStatus.ERROR for r in self.jobs)

    def by_status(self, status: str) -> List[JobResult]:
        return [r for r in self.jobs if r.status == status]

    def to_dict(self) -> dict:
        return {
            "jobs": [r.to_dict() for r in self.jobs],
            "summary": dict(
                Telemetry.aggregate(self.jobs),
                wall_seconds=round(self.elapsed_seconds, 3),
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses),
        }


class Scheduler:
    """Runs a corpus of :class:`JobSpec` to completion."""

    def __init__(self,
                 max_workers: int = 4,
                 timeout_seconds: Optional[float] = None,
                 max_retries: int = 1,
                 retry_backoff: float = 0.05,
                 cache: Optional[ResultCache] = None,
                 telemetry: Optional[Telemetry] = None,
                 runner: Runner = execute_job,
                 isolate: bool = True) -> None:
        self.max_workers = max(1, max_workers)
        self.timeout_seconds = timeout_seconds
        self.max_retries = max(0, max_retries)
        self.retry_backoff = retry_backoff
        self.cache = cache
        self.telemetry = telemetry or Telemetry()
        self.runner = runner
        self.isolate = isolate

    # ------------------------------------------------------------------
    # single-job execution
    # ------------------------------------------------------------------

    def _run_isolated(self, spec_dict: dict):
        """One attempt in a fresh process: ('ok', payload) |
        ('timeout', None) | ('crash', exitcode)."""
        return run_job_isolated(spec_dict, self.runner,
                                self.timeout_seconds)

    def _run_inline(self, spec_dict: dict):
        return run_job_inline(spec_dict, self.runner)

    def _execute(self, spec: JobSpec, key: Optional[str]) -> JobResult:
        """Run one job to a terminal status (with retries)."""
        spec_dict = spec.to_dict()
        start = time.perf_counter()
        if spec.repair:
            self.telemetry.emit("repair_started", job_id=spec.job_id,
                                engine=spec.engine)
        attempts = 0
        while True:
            attempts += 1
            if self.isolate:
                outcome, payload = self._run_isolated(spec_dict)
            else:
                outcome, payload = self._run_inline(spec_dict)
            elapsed = time.perf_counter() - start
            if outcome == "ok":
                result = JobResult(
                    job_id=spec.job_id,
                    status=payload.get("status", JobStatus.ERROR),
                    engine=spec.engine, attempts=attempts,
                    elapsed_seconds=elapsed, cache_key=key,
                    verdict=payload.get("verdict"),
                    check_stats=payload.get("check_stats"),
                    inputs=payload.get("inputs"),
                    repair=payload.get("repair"),
                    error=payload.get("error"))
                if result.repair is not None:
                    self.telemetry.emit(
                        "repair_finished", job_id=spec.job_id,
                        converged=result.repair.get("converged"),
                        verified=result.repair.get("verified"),
                        edits=len(result.repair.get("edits") or ()),
                        iterations=result.repair.get("iterations"),
                        recheck_queries=result.repair.get(
                            "recheck_queries"),
                        preamble_reuse=result.repair.get("preamble_reuse"))
                if result.status == JobStatus.DONE \
                        and self.cache is not None and key is not None:
                    self.cache.put(key, payload)
                return result
            if outcome == "timeout":
                # deterministic: a retry would just burn the budget again
                return JobResult(
                    job_id=spec.job_id, status=JobStatus.TIMEOUT,
                    engine=spec.engine, attempts=attempts,
                    elapsed_seconds=elapsed, cache_key=key,
                    error=f"hard timeout after "
                          f"{self.timeout_seconds}s")
            # crash — possibly transient (OOM kill, fork bomb next door)
            if attempts > self.max_retries:
                return JobResult(
                    job_id=spec.job_id, status=JobStatus.ERROR,
                    engine=spec.engine, attempts=attempts,
                    elapsed_seconds=elapsed, cache_key=key,
                    error=f"worker crashed (exit code {payload}) "
                          f"after {attempts} attempt(s)")
            self.telemetry.emit("job_retry", job_id=spec.job_id,
                                attempt=attempts, exit_code=payload)
            time.sleep(self.retry_backoff * attempts)

    def _process_one(self, spec: JobSpec) -> JobResult:
        key = self.cache.key_for(spec) if self.cache is not None else None
        if key is not None:
            payload = self.cache.get(key)
            if payload is not None:
                self.telemetry.emit("cache_hit", job_id=spec.job_id,
                                    cache_key=key)
                self.telemetry.emit("job_started", job_id=spec.job_id,
                                    engine=spec.engine, cached=True)
                result = JobResult(
                    job_id=spec.job_id, status=JobStatus.CACHED,
                    engine=spec.engine, attempts=0, cached=True,
                    cache_key=key, elapsed_seconds=0.0,
                    verdict=payload.get("verdict"),
                    check_stats=payload.get("check_stats"),
                    inputs=payload.get("inputs"),
                    repair=payload.get("repair"))
                self._emit_finished(result)
                return result
            self.telemetry.emit("cache_miss", job_id=spec.job_id,
                                cache_key=key)
        self.telemetry.emit("job_started", job_id=spec.job_id,
                            engine=spec.engine, cached=False)
        result = self._execute(spec, key)
        self._emit_finished(result)
        return result

    def _emit_finished(self, result: JobResult) -> None:
        self.telemetry.emit(
            "job_finished", job_id=result.job_id, status=result.status,
            attempts=result.attempts, cached=result.cached,
            elapsed_seconds=round(result.elapsed_seconds, 6),
            tier=(result.check_stats or {}).get("tier"),
            check_stats=result.check_stats,
            issues=result.issue_tags() if result.verdict else None)

    # ------------------------------------------------------------------
    # batch driving
    # ------------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> BatchResult:
        """Run all *specs*; one terminal :class:`JobResult` each, in
        submission order."""
        start = time.perf_counter()
        hits0 = self.cache.hits if self.cache else 0
        misses0 = self.cache.misses if self.cache else 0
        self.telemetry.emit("batch_started", jobs=len(specs),
                            workers=self.max_workers,
                            timeout_seconds=self.timeout_seconds,
                            cache=bool(self.cache))
        results: List[Optional[JobResult]] = [None] * len(specs)
        work: "queue.Queue" = queue.Queue()
        for i, spec in enumerate(specs):
            self.telemetry.emit("job_queued", job_id=spec.job_id,
                                engine=spec.engine)
            work.put((i, spec))
        jobs_by_worker: Dict[str, int] = {}

        def drain(worker_id: str) -> None:
            jobs_by_worker[worker_id] = 0
            while True:
                try:
                    i, spec = work.get_nowait()
                except queue.Empty:
                    return
                try:
                    results[i] = self._process_one(spec)
                except Exception as exc:  # scheduler bug — still record
                    results[i] = JobResult(
                        job_id=spec.job_id, status=JobStatus.ERROR,
                        engine=spec.engine,
                        error=f"scheduler: {type(exc).__name__}: {exc}")
                    self._emit_finished(results[i])
                finally:
                    jobs_by_worker[worker_id] += 1
                    work.task_done()

        n_threads = min(self.max_workers, max(1, len(specs)))
        threads = [threading.Thread(target=drain, args=(f"batch-w{i}",),
                                    daemon=True)
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        batch = BatchResult(
            jobs=[r for r in results if r is not None],
            elapsed_seconds=time.perf_counter() - start,
            cache_hits=(self.cache.hits - hits0) if self.cache else 0,
            cache_misses=(self.cache.misses - misses0) if self.cache else 0)
        # final state snapshot in the daemon's queue_sample schema, so
        # one trace consumer understands both batch and daemon runs
        wall = max(batch.elapsed_seconds, 1e-9)
        self.telemetry.queue_sample(
            depth=0, leased=0, oldest_age_seconds=None,
            workers={wid: {"jobs": n,
                           "jobs_per_sec": round(n / wall, 3)}
                     for wid, n in sorted(jobs_by_worker.items())},
            tiers=Telemetry.tier_counts(batch.jobs))
        self.telemetry.emit(
            "batch_finished",
            wall_seconds=round(batch.elapsed_seconds, 6),
            cache_hits=batch.cache_hits, cache_misses=batch.cache_misses,
            **{"summary": Telemetry.aggregate(batch.jobs)})
        return batch


def run_batch(specs: Sequence[JobSpec], *,
              max_workers: int = 4,
              timeout_seconds: Optional[float] = None,
              max_retries: int = 1,
              cache_dir: Optional[str] = None,
              trace_path: Optional[str] = None,
              engine: Optional[str] = None,
              isolate: bool = True,
              runner: Runner = execute_job) -> BatchResult:
    """One-call convenience wrapper around :class:`Scheduler`."""
    specs = list(specs)
    if engine is not None:
        for spec in specs:
            spec.engine = engine
    if cache_dir:
        # solver warm-start artifacts live beside the verdict cache;
        # explicit per-spec dirs win (and None stays None when the
        # batch has no cache at all)
        for spec in specs:
            if spec.solver_cache_dir is None:
                spec.solver_cache_dir = cache_dir
    cache = ResultCache(cache_dir) if cache_dir else None
    with Telemetry(trace_path) as telemetry:
        sched = Scheduler(max_workers=max_workers,
                          timeout_seconds=timeout_seconds,
                          max_retries=max_retries,
                          cache=cache, telemetry=telemetry,
                          runner=runner, isolate=isolate)
        batch = sched.run(specs)
    batch.telemetry = telemetry  # type: ignore[attr-defined]
    return batch
