"""Parboil analogues (Table IV), including the three genuine bugs of
Figs. 8-10: the histo_prescan RW race, the histo_final out-of-bounds
access, and the binning inter-block RW race.

The histo/mri-gridding configurations keep the paper's exact constants
(42 blocks x 512 threads, 8,159,232-byte histogram) so the Fig. 9 OOB
witness falls in the same iteration range the paper reports.
"""
from . import Kernel

BFS_PARBOIL = Kernel(
    name="parboil_bfs",
    table="Table IV",
    grid_dim=(8, 1, 1), block_dim=(64, 1, 1),   # 512 threads
    paper_inputs=(4, 11),
    expected_issues=["RW", "WW"],
    notes="Parboil's BFS_in_GPU_kernel: frontier expansion with a "
          "benign WW on the colour/visited array.",
    disable_oob=True,
    max_loop_splits=8,
    scalar_values={"frontier_len": 64},
    source="""
__global__ void BFS_in_GPU_kernel(int *frontier, int *row, int *col,
                                  int *color, int *cost, int *next_tail,
                                  int *next_frontier, int frontier_len,
                                  int max_nodes, int k_level, int gray) {
  unsigned id = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)id < frontier_len) {
    int node = frontier[id];
    int c = cost[node];
    for (int e = row[node]; e < row[node + 1]; e++) {
      int nbr = col[e];
      if (color[nbr] == 0) {
        color[nbr] = 1;
        cost[nbr] = c + 1;
        int idx = atomicAdd(&next_tail[0], 1);
        next_frontier[idx] = nbr;
      }
    }
  }
}
""",
    kernel_name="BFS_in_GPU_kernel",
)

CUTCP = Kernel(
    name="cutcp",
    table="Table IV",
    grid_dim=(121, 1, 1), block_dim=(128, 1, 1),   # 15,488 threads
    paper_inputs=(1, 8),
    expected_issues=["WW (Benign)"],
    notes="cutoff potential lattice: each thread accumulates into its "
          "lattice cell; the overlap region writes the same value "
          "(benign WW in the paper).",
    scalar_values={"zRegionIndex": 0, "binDim": 8},
    source="""
__shared__ float AtomBinCache[512];
__global__ void cutoff_potential_lattice6overlap(
    int binDim, float *binZeroAddr, float h, float cutoff2,
    float inv_cutoff2, float *regionZeroAddr, int zRegionIndex,
    float *zeroFlag) {
  unsigned tid = threadIdx.x;
  unsigned block_base = blockIdx.x * blockDim.x;
  AtomBinCache[tid] = binZeroAddr[block_base + tid];
  __syncthreads();
  float energy = AtomBinCache[tid] * 2.0f;
  regionZeroAddr[block_base + tid] = energy;
  if (tid == 0) {
    zeroFlag[0] = 0.0f;
  }
}
""",
    kernel_name="cutoff_potential_lattice6overlap",
)

HISTO_PRESCAN = Kernel(
    name="histo_prescan",
    table="Table IV / Fig. 8",
    grid_dim=(64, 1, 1), block_dim=(512, 1, 1),   # 32,768 threads
    paper_inputs=(1, 3),
    expected_issues=["RW"],
    notes="Fig. 8's genuine RW race: the tree reduction's final SUM(16) "
          "step runs without a barrier after the strided loop — thread "
          "17's write to Avg[17] races thread 1's read of Avg[1+16].",
    source="""
__shared__ float Avg[512];
__shared__ float StdDev[512];
__global__ void histo_prescan_kernel(unsigned *input, int size,
                                     unsigned *minmax) {
  unsigned tid = threadIdx.x;
  unsigned stride = blockDim.x * gridDim.x;
  unsigned addr = blockIdx.x * blockDim.x + tid;
  float avg = 0.0f;
  avg = avg + (float)input[addr];
  Avg[tid] = avg;
  StdDev[tid] = avg * avg;
  for (int s = blockDim.x / 2; s >= 32; s = s >> 1) {
    __syncthreads();
    if ((int)tid < s) {
      Avg[tid] += Avg[tid + s];
      StdDev[tid] += StdDev[tid + s];
    }
  }
  if (tid < 16) {
    Avg[tid] += Avg[tid + 16];
    StdDev[tid] += StdDev[tid + 16];
  }
  if (tid < 8) {
    Avg[tid] += Avg[tid + 8];
    StdDev[tid] += StdDev[tid + 8];
  }
  __syncthreads();
  if (tid == 0) {
    minmax[blockIdx.x] = (unsigned)Avg[0];
  }
}
""",
    kernel_name="histo_prescan_kernel",
)

HISTO_INTERMEDIATES = Kernel(
    name="histo_intermediates",
    table="Table IV",
    grid_dim=(127, 1, 1), block_dim=(255, 1, 1),   # ~32,370 threads
    paper_inputs=(0, 5),
    expected_issues=[],
    notes="Data reformatting stage; each thread owns disjoint cells.",
    scalar_values={"inputPitch": 256},
    source="""
__global__ void histo_intermediates_kernel(unsigned *input, int height,
                                           int width, int inputPitch,
                                           unsigned *sm_mappings) {
  unsigned line = blockIdx.x;
  unsigned tid = threadIdx.x;
  unsigned base = line * inputPitch + tid;
  unsigned data = input[base];
  sm_mappings[line * inputPitch + tid] = data;
}
""",
    kernel_name="histo_intermediates_kernel",
)

HISTO_MAIN = Kernel(
    name="histo_main",
    table="Table IV",
    grid_dim=(42, 1, 1), block_dim=(512, 1, 1),   # 21,504 threads
    paper_inputs=(2, 9),
    expected_issues=[],
    notes="Main histogramming with atomics: atomic-vs-atomic pairs do "
          "not race.",
    scalar_values={"sm_range_min": 0, "sm_range_max": 1},
    array_sizes={"global_subhisto": 1024, "global_histo": 1024,
                 "global_overflow": 1024},
    source="""
__global__ void histo_main_kernel(unsigned *sm_mappings, int num_elements,
                                  int sm_range_min, int sm_range_max,
                                  unsigned *global_subhisto,
                                  unsigned *global_histo,
                                  unsigned *global_overflow,
                                  int flag1, int flag2) {
  unsigned tid = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)tid < num_elements) {
    unsigned bin = sm_mappings[tid] & 1023u;
    atomicAdd(&global_subhisto[bin], 1);
  }
}
""",
    kernel_name="histo_main_kernel",
)

HISTO_FINAL = Kernel(
    name="histo_final",
    table="Table IV / Fig. 9",
    grid_dim=(42, 1, 1), block_dim=(512, 1, 1),   # 21,504 threads
    paper_inputs=(0, 8),
    expected_issues=["OOB"],
    notes="Fig. 9's genuine out-of-bounds: the grid-stride loop runs to "
          "size_low_histo/4 = 2,039,808 but global_histo (read as "
          "8-byte ushort4) holds only 8,159,232/8 = 1,019,904 elements; "
          "the 47th iteration of block 24 walks past the end.",
    scalar_values={"size_low_histo": 8159232},
    max_loop_splits=128,
    array_sizes={"global_histo": 1019904,      # in 8-byte elements
                 "global_subhisto": 2039808,
                 "final_histo": 2039808},
    source="""
__global__ void histo_final_kernel(int size_low_histo,
                                   unsigned *global_subhisto,
                                   long *global_histo,
                                   unsigned *final_histo,
                                   int flag1, int flag2, int flag3,
                                   int flag4) {
  unsigned start_offset = threadIdx.x + blockIdx.x * blockDim.x;
  unsigned stride = gridDim.x * blockDim.x;
  for (unsigned i = start_offset; i < (unsigned)(size_low_histo / 4);
       i += stride) {
    long global_histo_data = global_histo[i];
    final_histo[i] = (unsigned)global_histo_data
                     + global_subhisto[i];
  }
}
""",
    kernel_name="histo_final_kernel",
)

BINNING = Kernel(
    name="binning",
    table="Table IV / Fig. 10",
    grid_dim=(132, 1, 1), block_dim=(128, 1, 1),   # 16,896 threads
    paper_inputs=(2, 7),
    expected_issues=["Atomic/R"],
    notes="Fig. 10's inter-block RW race on binCount_g: the guard reads "
          "binCount_g[binIdx] while another thread atomically "
          "increments the same cell; binIdx derives from the symbolic "
          "sample_g contents (paper witness: block 32 thread 64 reads "
          "vs block 0 thread 0 atomicAdd).",
    scalar_values={"n": 16896, "binsize": 4, "size_xy_c": 64,
                   "gridSize0": 8},
    array_sizes={"sample_g": 101040, "binCount_g": 32768,
                 "sample_sorted_g": 101040},
    source="""
__global__ void binning_kernel(float *sample_g, unsigned *binCount_g,
                               float *sample_sorted_g, int n, int binsize,
                               int size_xy_c, int gridSize0) {
  unsigned sampleIdx = blockIdx.x * blockDim.x + threadIdx.x;
  if (sampleIdx < (unsigned)n) {
    float pt = sample_g[sampleIdx];
    unsigned binIdx = (unsigned)pt * size_xy_c + (unsigned)pt * gridSize0
                      + (unsigned)pt;
    binIdx = binIdx & 32767u;
    if (binCount_g[binIdx] < (unsigned)binsize) {
      unsigned count = atomicAdd(&binCount_g[binIdx], 1);
      sample_sorted_g[sampleIdx] = pt;
    }
  }
}
""",
    kernel_name="binning_kernel",
)

REORDER = Kernel(
    name="reorder",
    table="Table IV",
    grid_dim=(132, 1, 1), block_dim=(128, 1, 1),   # 16,896 threads
    paper_inputs=(1, 4),
    expected_issues=[],
    notes="mri-gridding reorder: a gather through a precomputed "
          "permutation (disjoint by construction in the concrete run).",
    scalar_values={"n": 16896},
    array_sizes={"bin_index": 16896, "sample_g": 16384, "sorted_g": 16896},
    source="""
__global__ void reorder_kernel(int n, unsigned *bin_index,
                               float *sample_g, float *sorted_g) {
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < (unsigned)n) {
    unsigned index = bin_index[i];
    sorted_g[i] = sample_g[index & 16383u];
  }
}
""",
    kernel_name="reorder_kernel",
)

SPMV = Kernel(
    name="spmv_jds",
    table="Table IV",
    grid_dim=(18, 1, 1), block_dim=(64, 1, 1),   # 1,152 threads
    paper_inputs=(2, 7),
    expected_issues=["WW"],
    notes="JDS sparse matrix-vector product. The paper reports the WW "
          "as benign (padding rows write the same zero); our float "
          "values are opaque, so value-equality cannot be proven and "
          "the WW is reported without the benign flag (see "
          "EXPERIMENTS.md).",
    scalar_values={"dem_rows": 1152, "depth": 2},
    array_sizes={"d_data": 2304, "d_index": 2304, "d_perm": 1152,
                 "x_vec": 1024, "dst_vector": 2048},
    source="""
__global__ void spmv_jds(float *dst_vector, float *d_data,
                         int *d_index, int *d_perm, float *x_vec,
                         int dem_rows, int depth) {
  unsigned ix = blockIdx.x * blockDim.x + threadIdx.x;
  if (ix < (unsigned)dem_rows) {
    float sum = 0.0f;
    for (int k = 0; k < depth; k++) {
      int j = d_index[k * dem_rows + ix];
      sum += d_data[k * dem_rows + ix] * x_vec[j & 1023];
    }
    int p = d_perm[ix];
    dst_vector[p & 2047] = sum;
  }
}
""",
    kernel_name="spmv_jds",
)

STENCIL = Kernel(
    name="stencil",
    table="Table IV",
    grid_dim=(16, 8, 1), block_dim=(32, 2, 1),   # 8,192 threads
    paper_inputs=(0, 7),
    expected_issues=[],
    notes="block2D 7-point stencil; the paper's run timed out at 2 "
          "hours — the heaviest Parboil entry (deep per-thread loops).",
    scalar_values={"c0": 1, "c1": 2, "nx": 64, "ny": 32, "nz": 8},
    array_sizes={"A0": 16384, "Anext": 16384, "c0f": 16384, "c1f": 16384},
    source="""
__global__ void block2D_hybrid_coarsen_x(float *c0f, float *c1f,
                                         float *A0, float *Anext,
                                         int nx, int ny, int nz) {
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  unsigned j = blockIdx.y * blockDim.y + threadIdx.y;
  for (int k = 1; k < nz - 1; k++) {
    if (i > 0) {
      if (j > 0) {
        if ((int)i < nx - 1) {
          if ((int)j < ny - 1) {
            unsigned base = i + nx * (j + ny * k);
            Anext[base] =
                A0[base + nx * ny] + A0[base - nx * ny]
                + A0[base + nx] + A0[base - nx]
                + A0[base + 1] + A0[base - 1]
                - A0[base] * 6.0f;
          }
        }
      }
    }
  }
}
""",
    kernel_name="block2D_hybrid_coarsen_x",
)

PARBOIL_KERNELS = [BFS_PARBOIL, CUTCP, HISTO_PRESCAN, HISTO_INTERMEDIATES,
                   HISTO_MAIN, HISTO_FINAL, BINNING, REORDER, SPMV, STENCIL]
