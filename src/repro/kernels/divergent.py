"""Highly divergent kernels (Table II).

These kernels fork a flow per thread-ID-dependent branch under GKLEEp
(exponential / T.O.) while SESA's flow combining keeps O(1) flows. The
last four are from the GPUVerify test suite, as in the paper.
"""
from . import Kernel
from .paper_examples import BITONIC

BITONIC20 = Kernel(
    name="bitonic2.0",
    table="Table II",
    block_dim=(16, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="SDK 2.0 bitonic sort (one element per thread).",
    source=BITONIC.source.replace("BitonicKernel", "bitonicSort"),
    kernel_name="bitonicSort",
)

WORDSEARCH = Kernel(
    name="wordsearch",
    table="Table II",
    block_dim=(16, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="Each thread matches a word against its window of the text; "
          "per-character input-dependent branches make GKLEEp fork "
          "2^WORD_LEN flows per thread group.",
    source="""
#define WORD_LEN 8
__global__ void wordsearch(int *text, int *word, int *result, int n) {
  unsigned tid = threadIdx.x;
  unsigned gid = blockIdx.x * blockDim.x + tid;
  int matches = 0;
  for (int j = 0; j < WORD_LEN; j++) {
    if (text[gid + j] == word[j]) {
      matches = matches + 1;
    }
  }
  if (matches == WORD_LEN) {
    result[gid] = 1;
  } else {
    result[gid] = 0;
  }
}
""")

BITONIC43 = Kernel(
    name="bitonic4.3",
    table="Table II",
    block_dim=(16, 1, 1),
    expected_issues=[],
    paper_resolvable="N",
    notes="SDK 4.3-style bitonic: two elements per thread, direction "
          "flag per subsequence — more divergence than 2.0.",
    source="""
__shared__ unsigned s_key[1024];
__global__ void bitonicSortShared(unsigned *d_key, unsigned arrayLength,
                                  unsigned dir) {
  unsigned tid = threadIdx.x;
  s_key[tid] = d_key[blockIdx.x * 2 * blockDim.x + tid];
  s_key[tid + blockDim.x] =
      d_key[blockIdx.x * 2 * blockDim.x + tid + blockDim.x];
  for (unsigned size = 2; size < 2 * blockDim.x; size <<= 1) {
    unsigned ddd = dir ^ ((tid & (size / 2)) != 0);
    for (unsigned stride = size / 2; stride > 0; stride >>= 1) {
      __syncthreads();
      unsigned pos = 2 * tid - (tid & (stride - 1));
      if (((s_key[pos] > s_key[pos + stride]) != 0) == ddd) {
        unsigned t = s_key[pos];
        s_key[pos] = s_key[pos + stride];
        s_key[pos + stride] = t;
      }
    }
  }
  for (unsigned stride2 = blockDim.x; stride2 > 0; stride2 >>= 1) {
    __syncthreads();
    unsigned pos2 = 2 * tid - (tid & (stride2 - 1));
    if (((s_key[pos2] > s_key[pos2 + stride2]) != 0) == dir) {
      unsigned t2 = s_key[pos2];
      s_key[pos2] = s_key[pos2 + stride2];
      s_key[pos2 + stride2] = t2;
    }
  }
  __syncthreads();
  d_key[blockIdx.x * 2 * blockDim.x + tid] = s_key[tid];
  d_key[blockIdx.x * 2 * blockDim.x + tid + blockDim.x] =
      s_key[tid + blockDim.x];
}
""",
    kernel_name="bitonicSortShared",
    scalar_values={"arrayLength": 32, "dir": 1},
)

MERGESORT43 = Kernel(
    name="mergeSort4.3",
    table="Table II",
    block_dim=(16, 1, 1),
    expected_issues=[],
    paper_resolvable="N",
    notes="SDK 4.3 mergeSort's rank-and-scatter step: a binary search "
          "per thread whose every probe is an input-dependent branch — "
          "GKLEEp's flows grow with the thread count (17/38/78/T.O. in "
          "the paper), SESA keeps one.",
    source="""
__shared__ unsigned s_key[512];
__global__ void mergeRanks(unsigned *d_dst, unsigned *d_src, unsigned n) {
  unsigned tid = threadIdx.x;
  s_key[tid] = d_src[blockIdx.x * blockDim.x + tid];
  __syncthreads();
  unsigned key = s_key[tid];
  unsigned lo = 0;
  for (unsigned s = blockDim.x / 2; s > 0; s /= 2) {
    if (s_key[lo + s - 1] < key) {
      lo = lo + s;
    }
  }
  d_dst[blockIdx.x * blockDim.x + tid] = s_key[lo] + key;
}
""",
    kernel_name="mergeRanks",
)

STREAM_COMPACTION = Kernel(
    name="stream_compaction",
    table="Table II",
    block_dim=(16, 1, 1),
    expected_issues=["WW"],   # the paper's manually-confirmed FALSE alarm
    paper_resolvable="N",
    notes="Scan-based compaction: the scatter address comes from the "
          "scanned flags, i.e. from other threads' writes. The paper "
          "reports a false OOB and WW race here (RR with RSLV=N); the "
          "over-approximated addresses produce the same spurious report "
          "in this implementation.",
    source="""
__shared__ unsigned flags[512];
__global__ void stream_compact(int *in, int *out, int *num, int n) {
  unsigned tid = threadIdx.x;
  unsigned flag = 0;
  if (in[tid] != 0) { flag = 1; }
  flags[tid] = flag;
  __syncthreads();
  for (unsigned offset = 1; offset < blockDim.x; offset *= 2) {
    unsigned val = 0;
    if (tid >= offset) { val = flags[tid - offset]; }
    __syncthreads();
    flags[tid] = flags[tid] + val;
    __syncthreads();
  }
  if (flag != 0) {
    out[flags[tid] - 1] = in[tid];
  }
  if (tid == 0) { num[0] = flags[blockDim.x - 1]; }
}
""",
    kernel_name="stream_compact",
)

N_STREAM_COMPACTION = Kernel(
    name="n_stream_compaction",
    table="Table II",
    block_dim=(16, 1, 1),
    expected_issues=["WW"],
    paper_resolvable="N",
    notes="The corrected compaction: scatter through a double-buffered "
          "exclusive scan; still unresolvable (scatter address from "
          "other threads' data) but no race is reported.",
    source="""
__shared__ unsigned scan_a[512];
__shared__ unsigned scan_b[512];
__global__ void n_stream_compact(int *in, int *out, int *num, int n) {
  unsigned tid = threadIdx.x;
  unsigned flag = 0;
  if (in[tid] != 0) { flag = 1; }
  scan_a[tid] = flag;
  __syncthreads();
  unsigned which = 0;
  for (unsigned offset = 1; offset < blockDim.x; offset *= 2) {
    unsigned v = 0;
    if (which == 0) {
      v = scan_a[tid];
      if (tid >= offset) { v = v + scan_a[tid - offset]; }
      scan_b[tid] = v;
    } else {
      v = scan_b[tid];
      if (tid >= offset) { v = v + scan_b[tid - offset]; }
      scan_a[tid] = v;
    }
    which = 1 - which;
    __syncthreads();
  }
  unsigned total = 0;
  if (which == 0) { total = scan_a[tid]; }
  else { total = scan_b[tid]; }
  if (flag != 0) {
    out[total - flag] = in[tid];
  }
}
""",
    kernel_name="n_stream_compact",
)

BLELLOCH = Kernel(
    name="blelloch",
    table="Table II",
    block_dim=(64, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="Work-efficient exclusive scan (up-sweep, root clear, "
          "down-sweep).",
    source="""
__shared__ int temp[1024];
__global__ void blelloch_scan(int *g_idata, int *g_odata) {
  unsigned thid = threadIdx.x;
  unsigned offset = 1;
  temp[2 * thid] = g_idata[2 * thid];
  temp[2 * thid + 1] = g_idata[2 * thid + 1];
  for (unsigned d = blockDim.x; d > 0; d >>= 1) {
    __syncthreads();
    if (thid < d) {
      unsigned ai = offset * (2 * thid + 1) - 1;
      unsigned bi = offset * (2 * thid + 2) - 1;
      temp[bi] += temp[ai];
    }
    offset *= 2;
  }
  if (thid == 0) { temp[2 * blockDim.x - 1] = 0; }
  for (unsigned d2 = 1; d2 < 2 * blockDim.x; d2 *= 2) {
    offset >>= 1;
    __syncthreads();
    if (thid < d2) {
      unsigned ai2 = offset * (2 * thid + 1) - 1;
      unsigned bi2 = offset * (2 * thid + 2) - 1;
      int t = temp[ai2];
      temp[ai2] = temp[bi2];
      temp[bi2] += t;
    }
  }
  __syncthreads();
  g_odata[2 * thid] = temp[2 * thid];
  g_odata[2 * thid + 1] = temp[2 * thid + 1];
}
""",
    kernel_name="blelloch_scan",
)

BRENTKUNG = Kernel(
    name="brentkung",
    table="Table II",
    block_dim=(64, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="Brent-Kung adder-style inclusive scan.",
    source="""
__shared__ int sums[1024];
__global__ void brentkung_scan(int *in, int *out) {
  unsigned tid = threadIdx.x;
  sums[2 * tid] = in[2 * tid];
  sums[2 * tid + 1] = in[2 * tid + 1];
  unsigned stride = 1;
  while (stride < 2 * blockDim.x) {
    __syncthreads();
    unsigned index = (tid + 1) * stride * 2 - 1;
    if (index < 2 * blockDim.x) {
      sums[index] += sums[index - stride];
    }
    stride *= 2;
  }
  stride = blockDim.x / 2;
  while (stride > 0) {
    __syncthreads();
    unsigned index2 = (tid + 1) * stride * 2 - 1;
    if (index2 + stride < 2 * blockDim.x) {
      sums[index2 + stride] += sums[index2];
    }
    stride /= 2;
  }
  __syncthreads();
  out[2 * tid] = sums[2 * tid];
  out[2 * tid + 1] = sums[2 * tid + 1];
}
""",
    kernel_name="brentkung_scan",
)

DIVERGENT_KERNELS = [BITONIC20, WORDSEARCH, BITONIC43, MERGESORT43,
                     STREAM_COMPACTION, N_STREAM_COMPACTION, BLELLOCH,
                     BRENTKUNG]
