"""CUDA SDK kernels (Table I) plus the racy histogram64 of SDK 2.0.

These are faithful MiniCUDA ports preserving each kernel's memory access
pattern and divergence structure; array/struct conveniences of the
originals are flattened per DESIGN.md.
"""
from . import Kernel

VECTOR_ADD = Kernel(
    name="vectorAdd",
    table="Table I",
    grid_dim=(196, 1, 1), block_dim=(256, 1, 1),   # 50,176 threads
    paper_inputs=(0, 4),
    expected_issues=[],
    source="""
__global__ void vectorAdd(float *A, float *B, float *C, int numElements) {
  int i = blockDim.x * blockIdx.x + threadIdx.x;
  if (i < numElements) {
    C[i] = A[i] + B[i];
  }
}
""")

CLOCK = Kernel(
    name="clock",
    table="Table I",
    grid_dim=(64, 1, 1), block_dim=(256, 1, 1),    # 16,384 threads
    paper_inputs=(0, 3),
    expected_issues=[],
    notes="The SDK clock kernel: per-block reduction plus a timer write "
          "by thread 0 (clock() itself modelled as an opaque float op).",
    source="""
__shared__ float shared[512];
__global__ void timedReduction(float *input, float *output, int *timer) {
  unsigned tid = threadIdx.x;
  unsigned bid = blockIdx.x;
  if (tid == 0) timer[bid] = 1;
  shared[tid] = input[tid + bid * blockDim.x];
  shared[tid + blockDim.x] = input[tid + bid * blockDim.x + blockDim.x];
  __syncthreads();
  for (unsigned d = blockDim.x; d > 0; d /= 2) {
    __syncthreads();
    if (tid < d) {
      float f0 = shared[tid];
      float f1 = shared[tid + d];
      if (f1 < f0) {
        shared[tid] = f1;
      }
    }
  }
  if (tid == 0) output[bid] = shared[0];
  __syncthreads();
  if (tid == 0) timer[bid + gridDim.x] = 1;
}
""")

MATRIX_MUL = Kernel(
    name="matrixMul",
    table="Table I",
    grid_dim=(20, 40, 1), block_dim=(16, 16, 1),   # 204,800 threads
    paper_inputs=(0, 5),
    expected_issues=[],
    scalar_values={"wA": 64, "wB": 320},
    array_sizes={"A": 40960, "B": 20480, "C": 204800},
    notes="Tiled matrix multiply; tile loops bound by wA (input), which "
          "SESA concretises as a loop bound (§III-C).",
    source="""
__shared__ float As[256];
__shared__ float Bs[256];
__global__ void matrixMul(float *C, float *A, float *B, int wA, int wB) {
  int bx = blockIdx.x;
  int by = blockIdx.y;
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int aBegin = wA * 16 * by;
  int aEnd = aBegin + wA - 1;
  int aStep = 16;
  int bBegin = 16 * bx;
  int bStep = 16 * wB;
  float Csub = 0.0f;
  int b = bBegin;
  for (int a = aBegin; a <= aEnd; a += aStep) {
    As[ty * 16 + tx] = A[a + wA * ty + tx];
    Bs[ty * 16 + tx] = B[b + wB * ty + tx];
    __syncthreads();
    for (int k = 0; k < 16; k++) {
      Csub += As[ty * 16 + k] * Bs[k * 16 + tx];
    }
    __syncthreads();
    b += bStep;
  }
  int c = wB * 16 * by + 16 * bx;
  C[c + wB * ty + tx] = Csub;
}
""")

SCAN_SHORT = Kernel(
    name="scan_short",
    table="Table I",
    grid_dim=(16, 1, 1), block_dim=(256, 1, 1),    # 4,096 threads
    paper_inputs=(0, 4),
    expected_issues=[],
    notes="Hillis-Steele scan with double buffering in shared memory.",
    source="""
__shared__ float temp[512];
__global__ void scan_short(float *g_odata, float *g_idata, int n, int dir) {
  unsigned thid = threadIdx.x;
  unsigned base = blockIdx.x * blockDim.x;
  int pout = 0;
  int pin = 1;
  if (thid > 0) { temp[thid] = g_idata[base + thid - 1]; }
  else { temp[thid] = 0.0f; }
  __syncthreads();
  for (unsigned offset = 1; offset < blockDim.x; offset *= 2) {
    pout = 1 - pout;
    pin = 1 - pin;
    if (thid >= offset)
      temp[pout * 256 + thid] =
        temp[pin * 256 + thid] + temp[pin * 256 + thid - offset];
    else
      temp[pout * 256 + thid] = temp[pin * 256 + thid];
    __syncthreads();
  }
  g_odata[base + thid] = temp[pout * 256 + thid];
}
""")

SCAN_LARGE = Kernel(
    name="scan_large",
    table="Table I",
    grid_dim=(16, 1, 1), block_dim=(256, 1, 1),
    paper_inputs=(0, 4),
    expected_issues=[],
    notes="Work-efficient (Blelloch-style) scan: up-sweep and down-sweep "
          "with a concrete block-size bound.",
    source="""
__shared__ float temp[1024];
__global__ void scan_large(float *g_odata, float *g_idata, int n, int dir) {
  unsigned thid = threadIdx.x;
  unsigned base = 2 * blockIdx.x * blockDim.x;
  unsigned offset = 1;
  temp[2 * thid] = g_idata[base + 2 * thid];
  temp[2 * thid + 1] = g_idata[base + 2 * thid + 1];
  for (unsigned d = blockDim.x; d > 0; d /= 2) {
    __syncthreads();
    if (thid < d) {
      unsigned ai = offset * (2 * thid + 1) - 1;
      unsigned bi = offset * (2 * thid + 2) - 1;
      temp[bi] += temp[ai];
    }
    offset *= 2;
  }
  if (thid == 0) { temp[2 * blockDim.x - 1] = 0.0f; }
  for (unsigned d2 = 1; d2 < 2 * blockDim.x; d2 *= 2) {
    offset /= 2;
    __syncthreads();
    if (thid < d2) {
      unsigned ai2 = offset * (2 * thid + 1) - 1;
      unsigned bi2 = offset * (2 * thid + 2) - 1;
      float t = temp[ai2];
      temp[ai2] = temp[bi2];
      temp[bi2] += t;
    }
  }
  __syncthreads();
  g_odata[base + 2 * thid] = temp[2 * thid];
  g_odata[base + 2 * thid + 1] = temp[2 * thid + 1];
}
""")

SCALAR_PROD = Kernel(
    name="scalarProd",
    table="Table I",
    grid_dim=(128, 1, 1), block_dim=(256, 1, 1),   # 32,768 threads
    paper_inputs=(0, 5),
    expected_issues=[],
    scalar_values={"vectorN": 128, "elementN": 256},
    source="""
__shared__ float accumResult[256];
__global__ void scalarProd(float *d_C, float *d_A, float *d_B,
                           int vectorN, int elementN) {
  unsigned tid = threadIdx.x;
  unsigned vec = blockIdx.x;
  unsigned vectorBase = elementN * vec;
  float sum = 0.0f;
  for (unsigned pos = tid; pos < elementN; pos += blockDim.x) {
    sum += d_A[vectorBase + pos] * d_B[vectorBase + pos];
  }
  accumResult[tid] = sum;
  for (unsigned stride = blockDim.x / 2; stride > 0; stride /= 2) {
    __syncthreads();
    if (tid < stride)
      accumResult[tid] += accumResult[stride + tid];
  }
  if (tid == 0) d_C[vec] = accumResult[0];
}
""")

TRANSPOSE = Kernel(
    name="transpose",
    table="Table I",
    grid_dim=(32, 32, 1), block_dim=(16, 16, 1),   # 262,144 threads
    paper_inputs=(0, 4),
    expected_issues=[],
    scalar_values={"width": 512, "height": 512},
    array_sizes={"idata": 262144, "odata": 262144},
    notes="Coalesced tiled transpose; the +1 tile pitch avoids shared "
          "memory bank conflicts in the original (kept here for the "
          "access pattern).",
    source="""
__shared__ float tile[272];
__global__ void transpose(float *odata, float *idata,
                          int width, int height) {
  unsigned xIndex = blockIdx.x * 16 + threadIdx.x;
  unsigned yIndex = blockIdx.y * 16 + threadIdx.y;
  unsigned index_in = xIndex + yIndex * width;
  tile[threadIdx.y * 17 + threadIdx.x] = idata[index_in];
  __syncthreads();
  unsigned xOut = blockIdx.y * 16 + threadIdx.x;
  unsigned yOut = blockIdx.x * 16 + threadIdx.y;
  unsigned index_out = xOut + yOut * height;
  odata[index_out] = tile[threadIdx.x * 17 + threadIdx.y];
}
""")

FAST_WALSH = Kernel(
    name="fastWalsh",
    table="Table I",
    grid_dim=(2, 1, 1), block_dim=(512, 1, 1),     # 1,024 threads
    paper_inputs=(0, 4),
    expected_issues=[],
    notes="Butterfly (Walsh-Hadamard) transform over a shared buffer.",
    source="""
__shared__ float s_data[1024];
__global__ void fwtBatch1Kernel(float *d_Output, float *d_Input,
                                int log2N, int pad) {
  unsigned pos = threadIdx.x;
  unsigned base = blockIdx.x * 2 * blockDim.x;
  s_data[pos] = d_Input[base + pos];
  s_data[pos + blockDim.x] = d_Input[base + pos + blockDim.x];
  __syncthreads();
  for (unsigned stride = blockDim.x; stride >= 1; stride /= 2) {
    unsigned lo = pos & (stride - 1);
    unsigned i0 = ((pos - lo) << 1) + lo;
    unsigned i1 = i0 + stride;
    float t0 = s_data[i0];
    float t1 = s_data[i1];
    s_data[i0] = t0 + t1;
    s_data[i1] = t0 - t1;
    __syncthreads();
  }
  d_Output[base + pos] = s_data[pos];
  d_Output[base + pos + blockDim.x] = s_data[pos + blockDim.x];
}
""")

HISTOGRAM64 = Kernel(
    name="histogram64",
    table="§VI-A (SDK 2.0)",
    grid_dim=(2, 1, 1), block_dim=(32, 1, 1),
    expected_issues=["WW", "RW"],
    paper_resolvable="Y",
    notes="The SDK 2.0 histogram64 bug: non-atomic read-modify-write of "
          "shared counters indexed by input data — a genuine WW race "
          "(found by SESA in 2 s vs 20+ s for GKLEE/GKLEEp).",
    source="""
__shared__ unsigned s_Hist[64];
__global__ void histogram64Kernel(unsigned *d_Result, unsigned *d_Data,
                                  int dataN) {
  unsigned tid = threadIdx.x;
  if (tid < 64) { s_Hist[tid] = 0; }
  __syncthreads();
  unsigned pos = blockIdx.x * blockDim.x + tid;
  if ((int)pos < dataN) {
    unsigned data4 = d_Data[pos];
    unsigned bin = (data4 >> 2) & 63u;
    s_Hist[bin] = s_Hist[bin] + 1;
  }
  __syncthreads();
  if (tid < 64) {
    d_Result[blockIdx.x * 64 + tid] = s_Hist[tid];
  }
}
""")

SDK_KERNELS = [VECTOR_ADD, CLOCK, MATRIX_MUL, SCAN_SHORT, SCAN_LARGE,
               SCALAR_PROD, TRANSPOSE, FAST_WALSH, HISTOGRAM64]
