"""The benchmark kernel suite.

MiniCUDA re-implementations of every kernel the paper evaluates:

* :mod:`repro.kernels.paper_examples` — the kernels printed in the paper
  itself (§II race example, Fig. 1 Generic/Reduction/Bitonic).
* :mod:`repro.kernels.sdk` — CUDA SDK kernels of Table I (plus the
  racy histogram64 of SDK 2.0).
* :mod:`repro.kernels.reductions` — the SDK reduce0..reduce5 family,
  including the warp-synchronous reduce4 hazard (§II refs [25]/[26]).
* :mod:`repro.kernels.divergent` — the highly divergent kernels of
  Table II (bitonic, wordsearch, mergeSort, stream compaction, blelloch,
  brentkung).
* :mod:`repro.kernels.lonestar` — irregular-application analogues of
  Table III (BFS and SSSP variants, BarnesHut BoundingBox).
* :mod:`repro.kernels.parboil` — Table IV analogues, including the three
  genuine bugs of Figs. 8-10 (histo_prescan RW race, histo_final OOB,
  binning inter-block RW race).

Each entry is a :class:`Kernel` with the source text, the launch
configuration the paper used (downscaled proportionally where noted),
and the expected verdicts for the test-suite.
"""
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Kernel:
    """One benchmark kernel plus its paper-reported expectations."""

    name: str
    source: str
    table: str                               # which table/figure it backs
    kernel_name: Optional[str] = None        # entry point (if several)
    grid_dim: Tuple[int, int, int] = (1, 1, 1)
    block_dim: Tuple[int, int, int] = (64, 1, 1)
    #: inputs count as reported: (symbolic, total)
    paper_inputs: Optional[Tuple[int, int]] = None
    #: expected issue kinds ("RW", "WW", "WW (Benign)", "OOB"), empty = clean
    expected_issues: List[str] = field(default_factory=list)
    #: paper's RSLV? column
    paper_resolvable: Optional[str] = None
    scalar_values: Dict[str, int] = field(default_factory=dict)
    array_sizes: Dict[str, int] = field(default_factory=dict)
    #: the paper disabled OOB checking for some suites (Table III note)
    disable_oob: bool = False
    #: cap for symbolic-loop-bound flow splitting (None: engine default)
    max_loop_splits: int = None
    notes: str = ""

    def launch_config(self, grid_dim=None, block_dim=None, **overrides):
        """A LaunchConfig matching this kernel's paper configuration."""
        from ..sym import LaunchConfig
        kw = dict(
            grid_dim=grid_dim or self.grid_dim,
            block_dim=block_dim or self.block_dim,
            scalar_values=dict(self.scalar_values),
            array_sizes=dict(self.array_sizes),
        )
        if self.disable_oob:
            kw["check_oob"] = False
        if self.max_loop_splits is not None:
            kw["max_loop_splits"] = self.max_loop_splits
        kw.update(overrides)
        return LaunchConfig(**kw)


from .paper_examples import PAPER_EXAMPLES
from .sdk import SDK_KERNELS
from .reductions import REDUCTION_FAMILY
from .divergent import DIVERGENT_KERNELS
from .lonestar import LONESTAR_KERNELS
from .parboil import PARBOIL_KERNELS

ALL_KERNELS: Dict[str, Kernel] = {}
for _group in (PAPER_EXAMPLES, SDK_KERNELS, REDUCTION_FAMILY,
               DIVERGENT_KERNELS, LONESTAR_KERNELS, PARBOIL_KERNELS):
    for _k in _group:
        ALL_KERNELS[_k.name] = _k

__all__ = ["Kernel", "PAPER_EXAMPLES", "SDK_KERNELS", "REDUCTION_FAMILY",
           "DIVERGENT_KERNELS", "LONESTAR_KERNELS", "PARBOIL_KERNELS",
           "ALL_KERNELS"]
