"""The kernels printed in the paper itself (§II and Fig. 1)."""
from . import Kernel

RACE_EXAMPLE = Kernel(
    name="race_example",
    table="§II",
    block_dim=(64, 1, 1),
    expected_issues=["RW"],
    paper_resolvable="Y",
    notes="WR race between threads 0 and bdim-1 before the barrier; "
          "RW race across the divergent halves after it.",
    source="""
__shared__ int v[64];
__global__ void race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
  __syncthreads();
  if (threadIdx.x % 2 == 0) {
    int x = v[threadIdx.x];
    x = x + 1;
  } else {
    v[threadIdx.x >> 2] = 1;
  }
}
""")

GENERIC = Kernel(
    name="generic",
    table="§III / §V Ex.1",
    block_dim=(64, 1, 1),
    paper_inputs=(0, 3),
    expected_issues=["WW"],
    paper_resolvable="Y",
    notes="The running Generic example: v = a|b under e1(tid), u under "
          "e3(c); A[w] with w untainted by any input, so all 3 inputs "
          "are concretisable. A[w]=... with w=tid is race-free per "
          "thread... but every thread writing A[tid] is fine; the WW "
          "would appear only if w collided — here w = tid so no race; "
          "expected_issues empty when w=tid.",
    source="""
__shared__ int A[64];
__global__ void generic(int a, int b, int c) {
  int u = 0;
  int v = 0;
  int w = threadIdx.x;
  int z = 1;
  if (threadIdx.x < 32) { v = a; } else { v = b; }
  if (c > 3) { u = threadIdx.x * 2; }
  A[w] = v + z;
}
""")
# w = tid.x: each thread writes its own cell — no race expected after all
GENERIC.expected_issues = []

REDUCTION = Kernel(
    name="reduction",
    table="Fig. 1 / Fig. 4",
    block_dim=(64, 1, 1),
    paper_inputs=(0, 2),
    expected_issues=[],
    paper_resolvable="Y",
    notes="Fig. 4's parametric flow tree collapses to one flow per "
          "barrier interval under flow combining; no races.",
    source="""
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
    __syncthreads();
  }
  odata[threadIdx.x] = sdata[threadIdx.x];
}
""")

REDUCTION_RACY = Kernel(
    name="reduction_racy",
    table="Fig. 1 (variant)",
    block_dim=(64, 1, 1),
    expected_issues=["RW"],
    paper_resolvable="Y",
    notes="The classic buggy reduction with the barrier hoisted out of "
          "the loop: adjacent strides race.",
    source="""
__shared__ float sdata[512];
__global__ void reduce_racy(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
  }
  __syncthreads();
  odata[threadIdx.x] = sdata[threadIdx.x];
}
""")

BITONIC = Kernel(
    name="bitonic_fig1",
    table="Fig. 1",
    block_dim=(16, 1, 1),
    expected_issues=[],
    paper_resolvable="N",
    notes="Fig. 1's bitonic sort: the swap guards read shared values "
          "written by partner threads, so guards are unresolvable "
          "(§IV-B discussion); flow combining keeps a single flow.",
    source="""
__shared__ unsigned shared[256];
__global__ void BitonicKernel(unsigned *values) {
  shared[threadIdx.x] = values[threadIdx.x];
  __syncthreads();
  for (unsigned int k = 2; k <= blockDim.x; k *= 2) {
    for (unsigned int j = k / 2; j > 0; j /= 2) {
      unsigned int ixj = threadIdx.x ^ j;
      if (ixj > threadIdx.x) {
        if ((threadIdx.x & k) == 0) {
          if (shared[threadIdx.x] > shared[ixj]) {
            unsigned tmp = shared[threadIdx.x];
            shared[threadIdx.x] = shared[ixj];
            shared[ixj] = tmp;
          }
        }
        else {
          if (shared[threadIdx.x] < shared[ixj]) {
            unsigned tmp = shared[threadIdx.x];
            shared[threadIdx.x] = shared[ixj];
            shared[ixj] = tmp;
          }
        }
      }
      __syncthreads();
    }
  }
  values[threadIdx.x] = shared[threadIdx.x];
}
""")

PAPER_EXAMPLES = [RACE_EXAMPLE, GENERIC, REDUCTION, REDUCTION_RACY, BITONIC]
