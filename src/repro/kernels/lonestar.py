"""LonestarGPU analogues (Table III): irregular graph kernels.

The originals traverse CSR graphs with data-dependent degrees and
worklists. The MiniCUDA ports preserve exactly that structure; the
synthetic CSR graph supplied by :func:`synthetic_csr` plays the role of
the paper's concrete input columns ("Conc."), while the taint-selected
symbolic columns ("Sym.") symbolise the data arrays that flow into
addresses (with loop-bound inputs kept concrete, §III-C).
"""
from typing import Dict, List, Tuple

from . import Kernel


def synthetic_csr(num_nodes: int, degree: int = 2
                  ) -> Tuple[List[int], List[int]]:
    """A ring-with-chords graph in CSR form (row offsets, column list)."""
    row = [0]
    col: List[int] = []
    for v in range(num_nodes):
        col.append((v + 1) % num_nodes)
        for d in range(1, degree):
            col.append((v + 2 * d) % num_nodes)
        row.append(len(col))
    return row, col


def csr_arrays(num_nodes: int, degree: int = 2) -> Dict[str, List[int]]:
    """The synthetic graph as named kernel-argument arrays."""
    row, col = synthetic_csr(num_nodes, degree)
    return {"row": row, "col": col}


def attach_concrete_graph(config) -> None:
    """Populate a LaunchConfig with the synthetic CSR graph and worklist
    (the concrete inputs of Table III's "Conc." columns)."""
    n = config.total_threads
    arrays = csr_arrays(n)
    for name, values in arrays.items():
        config.array_values.setdefault(name, values)
    config.array_values.setdefault("wt", [1] * len(arrays["col"]))
    config.array_values.setdefault("inwl", list(range(n)))
    config.array_sizes.setdefault("row", n + 1)
    config.array_sizes.setdefault("col", len(arrays["col"]))
    config.array_sizes.setdefault("wt", len(arrays["col"]))
    config.scalar_values.setdefault("nnodes", n)
    config.scalar_values.setdefault("ninwl", n)


BFS_LS = Kernel(
    name="bfs_ls",
    table="Table III",
    grid_dim=(4, 1, 1), block_dim=(64, 1, 1),   # 256 threads
    expected_issues=["RW"],
    paper_resolvable="N",
    disable_oob=True,
    max_loop_splits=8,
    notes="Level-synchronous BFS: neighbours at the frontier update "
          "dist[] without atomics — the classic benign-on-purpose "
          "('don't care') WW/RW race of Lonestar.",
    scalar_values={"level": 0},
    source="""
__global__ void bfs_ls(int *row, int *col, int *dist, int *changed,
                       int level, int nnodes) {
  unsigned v = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)v < nnodes) {
    if (dist[v] == level) {
      for (int e = row[v]; e < row[v + 1]; e++) {
        int dst = col[e];
        if (dist[dst] > level + 1) {
          dist[dst] = level + 1;
          changed[0] = 1;
        }
      }
    }
  }
}
""")

BFS_ATOMIC = Kernel(
    name="bfs_atomic",
    table="Table III",
    grid_dim=(16, 1, 1), block_dim=(64, 1, 1),   # 1,024 threads
    expected_issues=["Atomic/R"],
    paper_resolvable="N",
    disable_oob=True,
    max_loop_splits=8,
    notes="atomicMin-based relaxation still races with the plain read "
          "of dist[dst] (the paper's R/W* 'don't-care nondeterminism').",
    scalar_values={"level": 0},
    source="""
__global__ void bfs_atomic(int *row, int *col, int *dist, int *changed,
                           int level, int nnodes) {
  unsigned v = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)v < nnodes) {
    if (dist[v] == level) {
      for (int e = row[v]; e < row[v + 1]; e++) {
        int dst = col[e];
        if (dist[dst] > level + 1) {
          atomicMin(&dist[dst], level + 1);
          changed[0] = 1;
        }
      }
    }
  }
}
""")

BFS_WORKLISTW = Kernel(
    name="bfs_worklistw",
    table="Table III",
    grid_dim=(4, 1, 1), block_dim=(64, 1, 1),
    expected_issues=["RW"],
    paper_resolvable="N",
    disable_oob=True,
    max_loop_splits=8,
    notes="Worklist BFS, warp-centric: discovered nodes are appended "
          "through an atomically-reserved index.",
    scalar_values={"level": 0, "ninwl": 64},
    source="""
__global__ void bfs_worklistw(int *row, int *col, int *dist,
                              int *inwl, int *outwl, int *tail,
                              int level, int ninwl) {
  unsigned id = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)id < ninwl) {
    int v = inwl[id];
    for (int e = row[v]; e < row[v + 1]; e++) {
      int dst = col[e];
      if (dist[dst] > level + 1) {
        dist[dst] = level + 1;
        int idx = atomicAdd(&tail[0], 1);
        outwl[idx] = dst;
      }
    }
  }
}
""")

BFS_WORKLISTA = Kernel(
    name="bfs_worklista",
    table="Table III",
    grid_dim=(16, 1, 1), block_dim=(64, 1, 1),   # 1,024 threads
    expected_issues=["WW"],
    paper_resolvable="N",
    disable_oob=True,
    max_loop_splits=8,
    notes="Worklist BFS with atomic distance updates; the worklist "
          "append itself is still racy against readers.",
    scalar_values={"level": 0, "ninwl": 64},
    source="""
__global__ void bfs_worklista(int *row, int *col, int *dist,
                              int *inwl, int *outwl, int *tail,
                              int level, int ninwl) {
  unsigned id = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)id < ninwl) {
    int v = inwl[id];
    for (int e = row[v]; e < row[v + 1]; e++) {
      int dst = col[e];
      int old = atomicMin(&dist[dst], level + 1);
      if (old > level + 1) {
        int idx = atomicAdd(&tail[0], 1);
        outwl[idx] = dst;
      }
    }
  }
}
""")

BOUNDINGBOX = Kernel(
    name="BoundingBox",
    table="Table III",
    grid_dim=(12, 1, 1), block_dim=(512, 1, 1),   # 6,144 threads
    expected_issues=["RW", "WW"],
    paper_resolvable="N",   # paper: Y — our atomicInc return value is
                            # havocked, which taints the last-block guard
    disable_oob=True,
    notes="Barnes-Hut bounding box: per-block min/max reduction, then "
          "the last block combines the per-block results — the "
          "inter-block handoff races by design (paper: R/W* from "
          "'don't-care non-det').",
    source="""
__shared__ int sminx[512];
__shared__ int smaxx[512];
__global__ void BoundingBoxKernel(int *posx, int *gminx, int *gmaxx,
                                  int *blkcnt, int *bounds) {
  unsigned tid = threadIdx.x;
  unsigned i = blockIdx.x * blockDim.x + tid;
  int val = posx[i];
  sminx[tid] = val;
  smaxx[tid] = val;
  __syncthreads();
  for (unsigned s = blockDim.x / 2; s > 0; s /= 2) {
    if (tid < s) {
      sminx[tid] = min(sminx[tid], sminx[tid + s]);
      smaxx[tid] = max(smaxx[tid], smaxx[tid + s]);
    }
    __syncthreads();
  }
  if (tid == 0) {
    gminx[blockIdx.x] = sminx[0];
    gmaxx[blockIdx.x] = smaxx[0];
    int done = atomicInc(&blkcnt[0], gridDim.x);
    if (done == gridDim.x - 1) {
      int mn = gminx[0];
      int mx = gmaxx[0];
      for (unsigned b = 1; b < gridDim.x; b++) {
        mn = min(mn, gminx[b]);
        mx = max(mx, gmaxx[b]);
      }
      bounds[0] = mn;
      bounds[1] = mx;
    }
  }
}
""",
    kernel_name="BoundingBoxKernel",
)

SSSP_LS = Kernel(
    name="sssp_ls",
    table="Table III",
    grid_dim=(16, 1, 1), block_dim=(64, 1, 1),   # 1,024 threads
    expected_issues=["RW", "WW"],
    paper_resolvable="N",
    disable_oob=True,
    max_loop_splits=8,
    notes="Topology-driven SSSP: unsynchronised relaxations produce the "
          "genuine W/W race the paper confirms.",
    source="""
__global__ void sssp_ls(int *row, int *col, int *wt, int *dist,
                        int *changed, int nnodes) {
  unsigned v = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)v < nnodes) {
    int dv = dist[v];
    for (int e = row[v]; e < row[v + 1]; e++) {
      int dst = col[e];
      int alt = dv + wt[e];
      if (alt < dist[dst]) {
        dist[dst] = alt;
        changed[0] = 1;
      }
    }
  }
}
""")

SSSP_WORKLISTN = Kernel(
    name="sssp_worklistn",
    table="Table III",
    grid_dim=(16, 1, 1), block_dim=(64, 1, 1),
    expected_issues=["RW"],
    paper_resolvable="N",
    disable_oob=True,
    max_loop_splits=8,
    notes="Worklist SSSP; relaxation plus worklist append, W/W confirmed "
          "genuine in the paper.",
    scalar_values={"ninwl": 64},
    source="""
__global__ void sssp_worklistn(int *row, int *col, int *wt, int *dist,
                               int *inwl, int *outwl, int *tail,
                               int ninwl) {
  unsigned id = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)id < ninwl) {
    int v = inwl[id];
    int dv = dist[v];
    for (int e = row[v]; e < row[v + 1]; e++) {
      int dst = col[e];
      int alt = dv + wt[e];
      if (alt < dist[dst]) {
        dist[dst] = alt;
        int idx = atomicAdd(&tail[0], 1);
        outwl[idx] = dst;
      }
    }
  }
}
""")

LONESTAR_KERNELS = [BFS_LS, BFS_ATOMIC, BFS_WORKLISTW, BFS_WORKLISTA,
                    BOUNDINGBOX, SSSP_LS, SSSP_WORKLISTN]
