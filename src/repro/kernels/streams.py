"""Built-in stream programs for the inter-launch checker.

Each :class:`StreamCase` pairs a multi-kernel :class:`StreamProgram`
with its expected verdict. The suite is built from classic multi-launch
idioms — producer/consumer pipelines, event-ordered ping-pong buffers,
scatter-then-gather — each in a properly synchronised variant and a
seeded ``missing_sync`` variant whose only defect is the absent (or
wrong) synchronisation edge. Every kernel is individually race- and
OOB-free, so any reported race is by construction *inter-launch*.

Two extra cases exercise the checker's negative machinery: disjoint
concurrent writers that only the footprint/solver stack can discharge
(no sync edge exists), and same-stream FIFO ordering (zero unordered
pairs).

Deliberately not part of :data:`repro.kernels.ALL_KERNELS` — these are
programs, not kernels; the batch corpus reaches them via the
``streams`` suite name.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..streams.program import Launch, StreamProgram, SyncOp


@dataclass(frozen=True)
class StreamCase:
    """One stream program plus its ground-truth verdict."""

    name: str
    program: StreamProgram
    #: True iff the program has a (seeded) inter-launch race
    expected_racy: bool
    notes: str = ""


# ----------------------------------------------------------------------
# producer/consumer pipeline
# ----------------------------------------------------------------------

_PIPELINE_SOURCE = """
__global__ void produce(int *a) {
    a[threadIdx.x] = threadIdx.x;
}

__global__ void consume(int *a, int *b) {
    b[threadIdx.x] = a[threadIdx.x] + 1;
}
"""


def _pipeline(name: str, synced: bool) -> StreamProgram:
    steps = [Launch("produce", block_dim=64, stream=0,
                    args={"a": "a"})]
    if synced:
        steps.append(SyncOp("device_sync"))
    steps.append(Launch("consume", block_dim=64, stream=1,
                        args={"a": "a", "b": "b"}))
    return StreamProgram(name=name, source=_PIPELINE_SOURCE,
                         buffers={"a": 64, "b": 64}, steps=steps)


# ----------------------------------------------------------------------
# event-ordered ping-pong buffers
# ----------------------------------------------------------------------

_PINGPONG_SOURCE = """
__global__ void step(int *src, int *dst) {
    dst[threadIdx.x] = src[threadIdx.x] + 1;
}
"""


def _pingpong(name: str, synced: bool) -> StreamProgram:
    steps = [Launch("step", block_dim=64, stream=0,
                    args={"src": "a", "dst": "b"}, label="step_ab")]
    if synced:
        steps.append(SyncOp("event_record", stream=0, event="e0"))
        steps.append(SyncOp("event_wait", stream=1, event="e0"))
    steps.append(Launch("step", block_dim=64, stream=1,
                        args={"src": "b", "dst": "a"}, label="step_ba"))
    return StreamProgram(name=name, source=_PINGPONG_SOURCE,
                         buffers={"a": 64, "b": 64}, steps=steps)


# ----------------------------------------------------------------------
# pipelined reduction: two launches with *different* configurations
# ----------------------------------------------------------------------

_REDUCE_SOURCE = """
__shared__ int sdata[32];

__global__ void partial_reduce(int *input, int *partial) {
    sdata[threadIdx.x] = input[threadIdx.x + blockIdx.x * blockDim.x];
    __syncthreads();
    if (threadIdx.x == 0u) {
        int s = 0;
        for (int k = 0; k < 32; k = k + 1) {
            s += sdata[k];
        }
        partial[blockIdx.x] = s;
    }
}

__global__ void final_sum(int *partial, int *out) {
    out[threadIdx.x] = partial[threadIdx.x];
}
"""


def _reduce_pipeline(name: str, synced: bool) -> StreamProgram:
    steps = [Launch("partial_reduce", grid_dim=2, block_dim=32, stream=0,
                    args={"input": "input", "partial": "partial"})]
    if synced:
        steps.append(SyncOp("device_sync"))
    steps.append(Launch("final_sum", grid_dim=1, block_dim=2, stream=1,
                        args={"partial": "partial", "out": "out"}))
    return StreamProgram(name=name, source=_REDUCE_SOURCE,
                         buffers={"input": 64, "partial": 2, "out": 2},
                         steps=steps)


# ----------------------------------------------------------------------
# scatter then gather, ordered by a stream sync
# ----------------------------------------------------------------------

_SCATTER_SOURCE = """
__global__ void scatter(int *data) {
    data[threadIdx.x] = threadIdx.x * 2;
}

__global__ void gather(int *data, int *out) {
    out[threadIdx.x] = data[threadIdx.x];
}
"""


def _scatter_gather(name: str, sync_stream: int) -> StreamProgram:
    # the missing_sync variant synchronises the WRONG stream — a no-op
    # edge that leaves scatter and gather concurrent (a classic bug)
    return StreamProgram(
        name=name, source=_SCATTER_SOURCE,
        buffers={"data": 64, "out": 64},
        steps=[
            Launch("scatter", block_dim=64, stream=1,
                   args={"data": "data"}),
            SyncOp("stream_sync", stream=sync_stream),
            Launch("gather", block_dim=64, stream=0,
                   args={"data": "data", "out": "out"}),
        ])


# ----------------------------------------------------------------------
# negative machinery: disjoint writers and same-stream FIFO
# ----------------------------------------------------------------------

_HALF_WRITE_SOURCE = """
__global__ void half_write(int *data, int base) {
    data[base + threadIdx.x] = threadIdx.x;
}
"""

_BUMP_SOURCE = """
__global__ void bump(int *data) {
    data[threadIdx.x] = data[threadIdx.x] + 1;
}
"""


def _disjoint_streams() -> StreamProgram:
    # no sync edge at all: the two writers are concurrent and safe only
    # because their footprints are disjoint — the footprint/solver
    # stack (not happens-before) must discharge this one
    return StreamProgram(
        name="disjoint_streams", source=_HALF_WRITE_SOURCE,
        buffers={"data": 64},
        steps=[
            Launch("half_write", block_dim=32, stream=0,
                   args={"data": "data"}, scalar_values={"base": 0},
                   label="lower_half"),
            Launch("half_write", block_dim=32, stream=1,
                   args={"data": "data"}, scalar_values={"base": 32},
                   label="upper_half"),
        ])


def _same_stream_fifo() -> StreamProgram:
    # two read-modify-write launches with no sync op: stream FIFO alone
    # orders them (zero unordered pairs, zero solver work)
    return StreamProgram(
        name="same_stream_fifo", source=_BUMP_SOURCE,
        buffers={"data": 64},
        steps=[
            Launch("bump", block_dim=64, stream=0,
                   args={"data": "data"}, label="bump_1"),
            Launch("bump", block_dim=64, stream=0,
                   args={"data": "data"}, label="bump_2"),
        ])


STREAM_CASES: List[StreamCase] = [
    StreamCase(
        name="pipeline_sync",
        program=_pipeline("pipeline_sync", synced=True),
        expected_racy=False,
        notes="producer/consumer ordered by cudaDeviceSynchronize"),
    StreamCase(
        name="pipeline_missing_sync",
        program=_pipeline("pipeline_missing_sync", synced=False),
        expected_racy=True,
        notes="seeded: device sync removed; consume reads a while "
              "produce writes it"),
    StreamCase(
        name="pingpong_events",
        program=_pingpong("pingpong_events", synced=True),
        expected_racy=False,
        notes="ping-pong buffers ordered by event record/wait"),
    StreamCase(
        name="pingpong_missing_sync",
        program=_pingpong("pingpong_missing_sync", synced=False),
        expected_racy=True,
        notes="seeded: event edge removed; both steps touch a and b "
              "concurrently"),
    StreamCase(
        name="reduce_pipeline_sync",
        program=_reduce_pipeline("reduce_pipeline_sync", synced=True),
        expected_racy=False,
        notes="two-stage reduction with different launch geometries, "
              "ordered by device sync"),
    StreamCase(
        name="reduce_pipeline_missing_sync",
        program=_reduce_pipeline("reduce_pipeline_missing_sync",
                                 synced=False),
        expected_racy=True,
        notes="seeded: final_sum reads partial while partial_reduce "
              "writes it (grid 2x32 vs 1x2)"),
    StreamCase(
        name="scatter_gather_sync",
        program=_scatter_gather("scatter_gather_sync", sync_stream=1),
        expected_racy=False,
        notes="scatter on stream 1 ordered before gather by "
              "cudaStreamSynchronize(1)"),
    StreamCase(
        name="scatter_gather_missing_sync",
        program=_scatter_gather("scatter_gather_missing_sync",
                                sync_stream=0),
        expected_racy=True,
        notes="seeded: synchronises the wrong stream, a no-op edge"),
    StreamCase(
        name="disjoint_streams",
        program=_disjoint_streams(),
        expected_racy=False,
        notes="concurrent unsynchronised writers with provably "
              "disjoint footprints"),
    StreamCase(
        name="same_stream_fifo",
        program=_same_stream_fifo(),
        expected_racy=False,
        notes="same-stream launches are FIFO-ordered without any "
              "sync op"),
]


def get_stream_case(name: str) -> StreamCase:
    for case in STREAM_CASES:
        if case.name == name:
            return case
    raise KeyError(
        f"no stream case named {name!r} (expected one of "
        f"{', '.join(c.name for c in STREAM_CASES)})")
