"""The CUDA SDK reduction-kernel family (reduce0..reduce5).

The optimisation sequence every CUDA tutorial walks through — and a
perfect exercise for the §II warp-semantics discussion: ``reduce4``
drops ``__syncthreads()`` for the last warp (the classic
"warp-synchronous" idiom) and is correct **only** under lock-step warp
execution; under the compiler-legal "warp size may be 1" view the tail
races. The paper's references [25]/[26] are exactly about this hazard.
"""
from . import Kernel

REDUCE0 = Kernel(
    name="reduce0",
    table="SDK reductions",
    block_dim=(64, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="Interleaved addressing with modulo (the Fig. 1 reduction).",
    source="""
__shared__ int sdata0[512];
__global__ void reduce0(int *g_idata, int *g_odata) {
  unsigned tid = threadIdx.x;
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  sdata0[tid] = g_idata[i];
  __syncthreads();
  for (unsigned s = 1; s < blockDim.x; s *= 2) {
    if (tid % (2 * s) == 0) {
      sdata0[tid] += sdata0[tid + s];
    }
    __syncthreads();
  }
  if (tid == 0) g_odata[blockIdx.x] = sdata0[0];
}
""",
    kernel_name="reduce0",
)

REDUCE1 = Kernel(
    name="reduce1",
    table="SDK reductions",
    block_dim=(64, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="Interleaved addressing with contiguous indices.",
    source="""
__shared__ int sdata1[512];
__global__ void reduce1(int *g_idata, int *g_odata) {
  unsigned tid = threadIdx.x;
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  sdata1[tid] = g_idata[i];
  __syncthreads();
  for (unsigned s = 1; s < blockDim.x; s *= 2) {
    unsigned index = 2 * s * tid;
    if (index < blockDim.x) {
      sdata1[index] += sdata1[index + s];
    }
    __syncthreads();
  }
  if (tid == 0) g_odata[blockIdx.x] = sdata1[0];
}
""",
    kernel_name="reduce1",
)

REDUCE2 = Kernel(
    name="reduce2",
    table="SDK reductions",
    block_dim=(64, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="Sequential addressing (no divergence within the active half).",
    source="""
__shared__ int sdata2[512];
__global__ void reduce2(int *g_idata, int *g_odata) {
  unsigned tid = threadIdx.x;
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  sdata2[tid] = g_idata[i];
  __syncthreads();
  for (unsigned s = blockDim.x / 2; s > 0; s >>= 1) {
    if (tid < s) {
      sdata2[tid] += sdata2[tid + s];
    }
    __syncthreads();
  }
  if (tid == 0) g_odata[blockIdx.x] = sdata2[0];
}
""",
    kernel_name="reduce2",
)

REDUCE3 = Kernel(
    name="reduce3",
    table="SDK reductions",
    grid_dim=(2, 1, 1), block_dim=(64, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="First add during global load (each thread sums two elements).",
    source="""
__shared__ int sdata3[512];
__global__ void reduce3(int *g_idata, int *g_odata) {
  unsigned tid = threadIdx.x;
  unsigned i = blockIdx.x * blockDim.x * 2 + threadIdx.x;
  sdata3[tid] = g_idata[i] + g_idata[i + blockDim.x];
  __syncthreads();
  for (unsigned s = blockDim.x / 2; s > 0; s >>= 1) {
    if (tid < s) {
      sdata3[tid] += sdata3[tid + s];
    }
    __syncthreads();
  }
  if (tid == 0) g_odata[blockIdx.x] = sdata3[0];
}
""",
    kernel_name="reduce3",
)

REDUCE4 = Kernel(
    name="reduce4",
    table="SDK reductions / §II warp discussion",
    block_dim=(64, 1, 1),
    expected_issues=["RW"],   # under the default "warp size may be 1" view
    paper_resolvable="Y",
    notes="Unrolled warp-synchronous tail: no barrier once only one warp "
          "remains. Correct under lock-step SIMD (warp_lockstep=True), "
          "racy under the compiler-legal warp-size-1 view — the [25]/[26] "
          "hazard the paper highlights (volatile no longer rescues it).",
    source="""
__shared__ int sdata4[512];
__global__ void reduce4(int *g_idata, int *g_odata) {
  unsigned tid = threadIdx.x;
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  sdata4[tid] = g_idata[i];
  __syncthreads();
  for (unsigned s = blockDim.x / 2; s > 32; s >>= 1) {
    if (tid < s) {
      sdata4[tid] += sdata4[tid + s];
    }
    __syncthreads();
  }
  if (tid < 32) {
    sdata4[tid] += sdata4[tid + 32];
    sdata4[tid] += sdata4[tid + 16];
    sdata4[tid] += sdata4[tid + 8];
    sdata4[tid] += sdata4[tid + 4];
    sdata4[tid] += sdata4[tid + 2];
    sdata4[tid] += sdata4[tid + 1];
  }
  if (tid == 0) g_odata[blockIdx.x] = sdata4[0];
}
""",
    kernel_name="reduce4",
)

REDUCE5 = Kernel(
    name="reduce5",
    table="SDK reductions",
    block_dim=(64, 1, 1),
    expected_issues=[],
    paper_resolvable="Y",
    notes="The barrier-correct version of the unrolled tail (a barrier "
          "between every tail step): race-free under either warp view.",
    source="""
__shared__ int sdata5[512];
__global__ void reduce5(int *g_idata, int *g_odata) {
  unsigned tid = threadIdx.x;
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  sdata5[tid] = g_idata[i];
  __syncthreads();
  for (unsigned s = blockDim.x / 2; s > 32; s >>= 1) {
    if (tid < s) {
      sdata5[tid] += sdata5[tid + s];
    }
    __syncthreads();
  }
  if (tid < 32) { sdata5[tid] += sdata5[tid + 32]; }
  __syncthreads();
  if (tid < 16) { sdata5[tid] += sdata5[tid + 16]; }
  __syncthreads();
  if (tid < 8) { sdata5[tid] += sdata5[tid + 8]; }
  __syncthreads();
  if (tid < 4) { sdata5[tid] += sdata5[tid + 4]; }
  __syncthreads();
  if (tid < 2) { sdata5[tid] += sdata5[tid + 2]; }
  __syncthreads();
  if (tid < 1) { sdata5[tid] += sdata5[tid + 1]; }
  __syncthreads();
  if (tid == 0) g_odata[blockIdx.x] = sdata5[0];
}
""",
    kernel_name="reduce5",
)

REDUCTION_FAMILY = [REDUCE0, REDUCE1, REDUCE2, REDUCE3, REDUCE4, REDUCE5]
