"""Semantic helpers: type resolution, scopes, constant evaluation.

MiniCUDA type mapping: char/short/int/long → i8/i16/i32/i64 (with C
signedness), bool → i32, float/double → opaque 32/64-bit patterns.
"""
from __future__ import annotations

from typing import Dict, List, Optional

from .. import ir
from . import ast


class SemaError(Exception):
    """Semantic error with a source line number."""
    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


_BASE_WIDTHS = {"char": 8, "short": 16, "int": 32, "long": 64, "bool": 32}


def resolve_type(tn: ast.TypeName,
                 space: ir.MemSpace = ir.MemSpace.GLOBAL) -> ir.Type:
    """Resolve a syntactic type (ignoring array dims, which callers handle)."""
    if tn.base == "void":
        base: ir.Type = ir.VOID
    elif tn.base in ("float", "double"):
        base = ir.F32 if tn.base == "float" else ir.F64
    elif tn.base in _BASE_WIDTHS:
        base = ir.IntType(_BASE_WIDTHS[tn.base], tn.signed)
    else:
        raise SemaError(f"unknown base type {tn.base}", tn.line)
    for _ in range(tn.pointer_depth):
        base = ir.PointerType(base, space)
    return base


def const_eval(expr: ast.Expr, env: Optional[Dict[str, int]] = None) -> int:
    """Evaluate a compile-time constant expression (array dims, configs)."""
    env = env or {}
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Ident):
        if expr.name in env:
            return env[expr.name]
        raise SemaError(f"{expr.name} is not a compile-time constant",
                        expr.line)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -const_eval(expr.operand, env)
    if isinstance(expr, ast.Unary) and expr.op == "~":
        return ~const_eval(expr.operand, env)
    if isinstance(expr, ast.Binary):
        a = const_eval(expr.lhs, env)
        b = const_eval(expr.rhs, env)
        ops = {
            "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
            "/": lambda: a // b, "%": lambda: a % b,
            "<<": lambda: a << b, ">>": lambda: a >> b,
            "&": lambda: a & b, "|": lambda: a | b, "^": lambda: a ^ b,
        }
        if expr.op in ops:
            return ops[expr.op]()
    raise SemaError("expression is not a compile-time constant",
                    getattr(expr, "line", 0))


class Scope:
    """Lexically nested variable scope mapping names to IR pointer values."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.vars: Dict[str, ir.Value] = {}

    def declare(self, name: str, value: ir.Value, line: int = 0) -> None:
        if name in self.vars:
            raise SemaError(f"redeclaration of {name}", line)
        self.vars[name] = value

    def lookup(self, name: str) -> Optional[ir.Value]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


def common_int_type(a: ir.IntType, b: ir.IntType) -> ir.IntType:
    """C usual arithmetic conversions restricted to integers."""
    width = max(a.width, b.width, 32)
    # unsigned wins at equal rank (C semantics)
    if a.width == b.width:
        signed = a.signed and b.signed
    else:
        wider = a if a.width > b.width else b
        signed = wider.signed
    return ir.IntType(width, signed)
