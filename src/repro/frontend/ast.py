"""AST for MiniCUDA — the C subset with CUDA qualifiers that the paper's
benchmark kernels are written in.

Nodes carry the source ``line`` for diagnostics; race reports point back
at these positions.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = 0
    col: int = 0     # 1-based source column; 0 = unknown


# ---------------------------------------------------------------------------
# types (syntactic; resolved by sema)
# ---------------------------------------------------------------------------

@dataclass
class TypeName(Node):
    """e.g. ``unsigned int``, ``float*``, ``int[256]``."""
    base: str = "int"            # int, unsigned, char, short, long, float, double, void
    signed: bool = True
    pointer_depth: int = 0
    array_dims: List["Expr"] = field(default_factory=list)

    def __repr__(self) -> str:
        sign = "" if self.signed else "unsigned "
        stars = "*" * self.pointer_depth
        dims = "".join("[...]" for _ in self.array_dims)
        return f"{sign}{self.base}{stars}{dims}"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0
    unsigned: bool = False


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class BuiltinRef(Expr):
    """threadIdx.x / blockIdx.y / blockDim.z / gridDim.x / warpSize."""
    base: str = "threadIdx"
    axis: str = "x"


@dataclass
class Unary(Expr):
    op: str = "-"                 # - ! ~ * & ++pre --pre
    operand: Optional[Expr] = None


@dataclass
class PostIncDec(Expr):
    op: str = "++"
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = "+"
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """``lhs op rhs`` where op is =, +=, -=, ..."""
    op: str = "="
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class CastExpr(Expr):
    to_type: Optional[TypeName] = None
    operand: Optional[Expr] = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class DeclStmt(Stmt):
    type_name: Optional[TypeName] = None
    declarators: List[Tuple[str, Optional[TypeName], Optional[Expr]]] = \
        field(default_factory=list)   # (name, full type, initializer)
    shared: bool = False


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then_body: Optional["Block"] = None
    else_body: Optional["Block"] = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional["Block"] = None


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: Optional["Block"] = None
    is_do_while: bool = False


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class SyncStmt(Stmt):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    type_name: Optional[TypeName] = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    qualifier: str = ""           # __global__ / __device__ / "" (host)
    ret_type: Optional[TypeName] = None
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class SharedDecl(Node):
    """Module-level ``__shared__ int sdata[N];``"""
    name: str = ""
    type_name: Optional[TypeName] = None


@dataclass
class TranslationUnit(Node):
    functions: List[FunctionDef] = field(default_factory=list)
    shared_decls: List[SharedDecl] = field(default_factory=list)
