"""MiniCUDA front-end: lexer, parser, and IR code generation.

Replaces the Clang-3.2 front-end of the original SESA (see DESIGN.md for
the substitution rationale).
"""
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse
from .sema import SemaError, const_eval, resolve_type
from .codegen import CodeGen, CodeGenError, compile_source

__all__ = [
    "LexError", "Token", "tokenize", "ParseError", "parse", "SemaError",
    "const_eval", "resolve_type", "CodeGen", "CodeGenError",
    "compile_source",
]
