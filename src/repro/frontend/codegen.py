"""AST → IR lowering.

Locals become allocas (promoted to SSA by the mem2reg pass); ``__shared__``
declarations become module-level globals in SHARED space; kernel pointer
parameters point into GLOBAL space. Booleans are i1 and widened on demand,
floats are opaque bit patterns (their arithmetic is carried as calls the
executor treats as uninterpreted).

MiniCUDA evaluates ``&&``/``||`` and ``?:`` eagerly (no short-circuit
control flow); the bundled kernels are written accordingly. This keeps the
flow structure that SESA analyses in one-to-one correspondence with the
visible branches of the source.
"""
from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from .. import ir
from . import ast
from .parser import parse
from .sema import Scope, SemaError, common_int_type, const_eval, resolve_type


def _loc(node: ast.Node) -> ir.SourceLoc:
    """IR source position for an AST node (line:col, compares as line)."""
    return ir.SourceLoc(node.line, node.col)

_BOOL = ir.IntType(1, signed=False)

# CUDA built-ins exposed to kernels, all unsigned 32-bit
_BUILTIN_TYPE = ir.IntType(32, signed=False)

_ATOMIC_CALLS = {
    "atomicAdd": "add", "atomicSub": "sub", "atomicMin": "min",
    "atomicMax": "max", "atomicAnd": "and", "atomicOr": "or",
    "atomicXor": "xor", "atomicExch": "exch", "atomicInc": "inc",
    "atomicDec": "dec",
}

# float math intrinsics carried through as opaque calls
_FLOAT_INTRINSICS = frozenset({
    "sqrtf", "sqrt", "expf", "exp", "logf", "log", "sinf", "cosf", "sin",
    "cos", "powf", "pow", "fabsf", "fabs", "floorf", "ceilf", "rsqrtf",
    "__fdividef", "fminf", "fmaxf", "__expf", "__logf", "__sinf", "__cosf",
    "__powf",
})


class CodeGenError(SemaError):
    """Raised for semantic errors during lowering."""
    pass


class CodeGen:
    """Compiles a translation unit into an :class:`ir.Module`."""

    def __init__(self, module_name: str = "minicuda") -> None:
        self.module = ir.Module(module_name)
        self.builtins: Dict[str, ir.BuiltinValue] = {}
        self.device_fns: Dict[str, ast.FunctionDef] = {}

    # ------------------------------------------------------------------

    def compile(self, unit: ast.TranslationUnit) -> ir.Module:
        for decl in unit.shared_decls:
            self._emit_shared_global(decl, prefix="")
        for fn in unit.functions:
            if fn.qualifier == "__device__":
                self.device_fns[fn.name] = fn
        for fn in unit.functions:
            if fn.qualifier == "__global__":
                FunctionCompiler(self, fn).run()
        return self.module

    def builtin(self, name: str) -> ir.BuiltinValue:
        bv = self.builtins.get(name)
        if bv is None:
            bv = ir.BuiltinValue(name, _BUILTIN_TYPE)
            self.builtins[name] = bv
        return bv

    def _emit_shared_global(self, decl: ast.SharedDecl,
                            prefix: str) -> ir.GlobalVariable:
        tn = decl.type_name
        elem = resolve_type(
            ast.TypeName(line=tn.line, col=tn.col, base=tn.base,
                         signed=tn.signed),
            ir.MemSpace.SHARED)
        storage: ir.Type = elem
        for dim in reversed(tn.array_dims):
            storage = ir.ArrayType(storage, const_eval(dim))
        name = f"{prefix}{decl.name}" if prefix else decl.name
        gv = ir.GlobalVariable(name, storage, ir.MemSpace.SHARED)
        self.module.add_global(gv)
        return gv


class _Binding:
    """A name binding: either a memory slot (load/store) or a direct
    pointer (arrays, whose name decays to the address of element 0)."""

    __slots__ = ("value", "direct")

    def __init__(self, value: ir.Value, direct: bool) -> None:
        self.value = value
        self.direct = direct


class FunctionCompiler:
    """Lowers one kernel body to IR (with device-fn inlining)."""
    def __init__(self, cg: CodeGen, fn_ast: ast.FunctionDef) -> None:
        self.cg = cg
        self.fn_ast = fn_ast
        param_types = []
        for p in fn_ast.params:
            space = ir.MemSpace.GLOBAL  # kernel pointers point at device mem
            param_types.append(resolve_type(p.type_name, space))
        ret = resolve_type(fn_ast.ret_type)
        fn_type = ir.FunctionType(ret, tuple(param_types))
        self.function = ir.Function(
            fn_ast.name, fn_type, [p.name for p in fn_ast.params],
            is_kernel=(fn_ast.qualifier == "__global__"))
        cg.module.add_function(self.function)
        self.builder = ir.IRBuilder(self.function)
        self.scope = Scope()
        # (break_target, continue_target) stack
        self.loop_stack: List[Tuple[ir.BasicBlock, ir.BasicBlock]] = []
        # inlining state: (return slot, continuation block) when inside a
        # __device__ body, plus the active call chain for recursion checks
        self.ret_target = None
        self.inline_stack: List[str] = []
        self.shared_counter = 0

    # ------------------------------------------------------------------

    def run(self) -> ir.Function:
        entry = self.function.new_block("entry")
        self.builder.position_at(entry)
        for arg in self.function.args:
            slot = self.builder.alloca(arg.type, hint=f"{arg.name}.addr")
            self.builder.store(arg, slot)
            self.scope.declare(arg.name, _Binding(slot, direct=False))
        self.gen_block(self.fn_ast.body)
        if not self.builder.block.is_terminated():
            if self.function.type.ret.is_void():
                self.builder.ret()
            else:
                self.builder.ret(ir.Constant(0, self.function.type.ret))
        self.function.verify()
        return self.function


    def _lookup(self, name: str):
        binding = self.scope.lookup(name)
        if binding is not None:
            return binding
        gv = self.cg.module.globals.get(name) \
            or self.cg.module.globals.get(f"{self.function.name}.{name}")
        if gv is not None:
            return _Binding(gv, direct=isinstance(gv.storage_type,
                                                  ir.ArrayType))
        return None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def gen_block(self, block: ast.Block) -> None:
        outer = self.scope
        self.scope = Scope(outer)
        try:
            for stmt in block.stmts:
                self.gen_stmt(stmt)
        finally:
            self.scope = outer

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        self.builder.current_loc = _loc(stmt)
        if isinstance(stmt, ast.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self.gen_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.gen_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise CodeGenError("break outside loop", stmt.line)
            self.builder.jump(self.loop_stack[-1][0])
            self._dead_block()
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise CodeGenError("continue outside loop", stmt.line)
            self.builder.jump(self.loop_stack[-1][1])
            self._dead_block()
        elif isinstance(stmt, ast.ReturnStmt):
            if self.ret_target is not None:
                ret_slot, cont = self.ret_target
                if stmt.value is not None:
                    if ret_slot is None:
                        raise CodeGenError("value returned from void function",
                                           stmt.line)
                    slot_ty = ret_slot.type
                    assert isinstance(slot_ty, ir.PointerType)
                    value = self._coerce(self.gen_expr(stmt.value),
                                         slot_ty.pointee, stmt.line)
                    self.builder.store(value, ret_slot)
                self.builder.jump(cont)
            elif stmt.value is not None:
                value = self.gen_expr(stmt.value)
                value = self._coerce(value, self.function.type.ret, stmt.line)
                self.builder.ret(value)
            else:
                self.builder.ret()
            self._dead_block()
        elif isinstance(stmt, ast.SyncStmt):
            self.builder.sync()
        else:
            raise CodeGenError(f"unsupported statement {type(stmt).__name__}",
                               stmt.line)

    def _dead_block(self) -> None:
        dead = self.function.new_block("dead")
        self.builder.position_at(dead)

    def gen_decl(self, stmt: ast.DeclStmt) -> None:
        for name, type_name, init in stmt.declarators:
            if stmt.shared:
                decl = ast.SharedDecl(line=stmt.line, col=stmt.col,
                                      name=name, type_name=type_name)
                gv = self.cg._emit_shared_global(
                    decl, prefix=f"{self.function.name}.")
                direct = bool(type_name.array_dims)
                self.scope.declare(name, _Binding(gv, direct=direct),
                                   stmt.line)
                if init is not None:
                    raise CodeGenError(
                        "__shared__ initialisers are not supported "
                        "(CUDA has none either)", stmt.line)
                continue
            elem = resolve_type(type_name, ir.MemSpace.LOCAL)
            if type_name.array_dims:
                count = 1
                for dim in type_name.array_dims:
                    count *= const_eval(dim)
                slot = self.builder.alloca(elem, count, hint=name)
                self.scope.declare(name, _Binding(slot, direct=True),
                                   stmt.line)
            else:
                slot = self.builder.alloca(elem, hint=name)
                self.scope.declare(name, _Binding(slot, direct=False),
                                   stmt.line)
                if init is not None:
                    value = self._coerce(self.gen_expr(init), elem, stmt.line)
                    self.builder.store(value, slot)

    def gen_if(self, stmt: ast.IfStmt) -> None:
        cond = self._as_bool(self.gen_expr(stmt.cond), stmt.line)
        then_bb = self.function.new_block("if.then")
        merge_bb = self.function.new_block("if.end")
        else_bb = merge_bb if stmt.else_body is None \
            else self.function.new_block("if.else")
        br = ir.Br(cond, then_bb, else_bb)
        br.loc = _loc(stmt)
        self.builder.block.append(br)

        self.builder.position_at(then_bb)
        self.gen_block(stmt.then_body)
        if not self.builder.block.is_terminated():
            self.builder.jump(merge_bb)
        if stmt.else_body is not None:
            self.builder.position_at(else_bb)
            self.gen_block(stmt.else_body)
            if not self.builder.block.is_terminated():
                self.builder.jump(merge_bb)
        self.builder.position_at(merge_bb)

    def gen_for(self, stmt: ast.ForStmt) -> None:
        outer = self.scope
        self.scope = Scope(outer)
        try:
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            header = self.function.new_block("for.cond")
            body = self.function.new_block("for.body")
            step = self.function.new_block("for.step")
            exit_bb = self.function.new_block("for.end")
            self.builder.jump(header)
            self.builder.position_at(header)
            if stmt.cond is not None:
                self.builder.current_loc = _loc(stmt)
                cond = self._as_bool(self.gen_expr(stmt.cond), stmt.line)
                br = ir.Br(cond, body, exit_bb)
                br.loc = _loc(stmt)
                br.meta["loop_branch"] = True
                self.builder.block.append(br)
            else:
                self.builder.jump(body)
            self.builder.position_at(body)
            self.loop_stack.append((exit_bb, step))
            self.gen_block(stmt.body)
            self.loop_stack.pop()
            if not self.builder.block.is_terminated():
                self.builder.jump(step)
            self.builder.position_at(step)
            if stmt.step is not None:
                self.builder.current_loc = _loc(stmt)
                self.gen_expr(stmt.step)
            self.builder.jump(header)
            self.builder.position_at(exit_bb)
        finally:
            self.scope = outer

    def gen_while(self, stmt: ast.WhileStmt) -> None:
        header = self.function.new_block("while.cond")
        body = self.function.new_block("while.body")
        exit_bb = self.function.new_block("while.end")
        self.builder.jump(body if stmt.is_do_while else header)

        self.builder.position_at(header)
        self.builder.current_loc = _loc(stmt)
        cond = self._as_bool(self.gen_expr(stmt.cond), stmt.line)
        br = ir.Br(cond, body, exit_bb)
        br.loc = _loc(stmt)
        br.meta["loop_branch"] = True
        self.builder.block.append(br)

        self.builder.position_at(body)
        self.loop_stack.append((exit_bb, header))
        self.gen_block(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated():
            self.builder.jump(header)
        self.builder.position_at(exit_bb)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def gen_expr(self, expr: ast.Expr) -> ir.Value:
        self.builder.current_loc = _loc(expr)
        if isinstance(expr, ast.IntLit):
            ty = ir.IntType(32, signed=not expr.unsigned)
            if expr.value >= 2**31 and not expr.unsigned:
                ty = ir.IntType(32, signed=False)
            return ir.Constant(expr.value & 0xFFFFFFFF, ty)
        if isinstance(expr, ast.FloatLit):
            bits = struct.unpack("<I", struct.pack("<f", expr.value))[0]
            return ir.Constant(bits, ir.F32)
        if isinstance(expr, ast.BuiltinRef):
            if expr.base == "warpSize":
                return self.cg.builtin("warpSize")
            short = {"threadIdx": "tid", "blockIdx": "bid",
                     "blockDim": "bdim", "gridDim": "gdim"}[expr.base]
            return self.cg.builtin(f"{short}.{expr.axis}")
        if isinstance(expr, ast.Ident):
            binding = self._lookup(expr.name)
            if binding is None:
                raise CodeGenError(f"undeclared identifier {expr.name}",
                                   expr.line)
            if binding.direct:
                return binding.value
            return self.builder.load(binding.value)
        if isinstance(expr, ast.Index):
            ptr_val = self.gen_lvalue(expr)
            return self.builder.load(ptr_val)
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.PostIncDec):
            slot = self.gen_lvalue(expr.operand)
            old = self.builder.load(slot)
            one = ir.Constant(1, old.type)
            op = "add" if expr.op == "++" else "sub"
            new = self.builder.binop(op, old, one)
            self.builder.store(new, slot)
            return old
        if isinstance(expr, ast.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, ast.Ternary):
            cond = self._as_bool(self.gen_expr(expr.cond), expr.line)
            then = self.gen_expr(expr.then)
            other = self.gen_expr(expr.otherwise)
            then, other = self._unify(then, other, expr.line)
            return self.builder.select(cond, then, other)
        if isinstance(expr, ast.Assign):
            return self.gen_assign(expr)
        if isinstance(expr, ast.CallExpr):
            return self.gen_call(expr)
        if isinstance(expr, ast.CastExpr):
            value = self.gen_expr(expr.operand)
            target = resolve_type(expr.to_type, ir.MemSpace.GLOBAL)
            return self._coerce(value, target, expr.line, explicit=True)
        raise CodeGenError(f"unsupported expression {type(expr).__name__}",
                           expr.line)

    def gen_unary(self, expr: ast.Unary) -> ir.Value:
        op = expr.op
        if op == "*":
            pointer = self.gen_expr(expr.operand)
            if not pointer.type.is_pointer():
                raise CodeGenError("dereference of non-pointer", expr.line)
            return self.builder.load(pointer)
        if op == "&":
            return self.gen_lvalue(expr.operand)
        if op in ("++pre", "--pre"):
            slot = self.gen_lvalue(expr.operand)
            old = self.builder.load(slot)
            one = ir.Constant(1, old.type)
            new = self.builder.binop("add" if op == "++pre" else "sub",
                                     old, one)
            self.builder.store(new, slot)
            return new
        value = self.gen_expr(expr.operand)
        if op == "-":
            if value.type.is_float():
                return self.builder.binop(
                    "fsub", ir.Constant(0, value.type), value)
            return self.builder.binop(
                "sub", ir.Constant(0, value.type), value)
        if op == "~":
            return self.builder.binop(
                "xor", value, ir.Constant(-1 & ((1 << value.type.width) - 1),
                                          value.type))
        if op == "!":
            b = self._as_bool(value, expr.line)
            return self.builder.binop(
                "xor", b, ir.Constant(1, _BOOL), _BOOL)
        raise CodeGenError(f"unsupported unary {op}", expr.line)

    def gen_binary(self, expr: ast.Binary) -> ir.Value:
        op = expr.op
        if op == ",":
            self.gen_expr(expr.lhs)
            return self.gen_expr(expr.rhs)
        if op in ("&&", "||"):
            lhs = self._as_bool(self.gen_expr(expr.lhs), expr.line)
            rhs = self._as_bool(self.gen_expr(expr.rhs), expr.line)
            return self.builder.binop("and" if op == "&&" else "or",
                                      lhs, rhs, _BOOL)
        lhs = self.gen_expr(expr.lhs)
        rhs = self.gen_expr(expr.rhs)

        # pointer arithmetic
        if lhs.type.is_pointer() and rhs.type.is_int() and op in ("+", "-"):
            index = rhs
            if op == "-":
                index = self.builder.binop(
                    "sub", ir.Constant(0, rhs.type), rhs)
            return self.builder.gep(lhs, index)
        if rhs.type.is_pointer() and lhs.type.is_int() and op == "+":
            return self.builder.gep(rhs, lhs)

        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self.gen_compare(op, lhs, rhs, expr.line)

        lhs, rhs = self._unify(lhs, rhs, expr.line)
        if lhs.type.is_float():
            fmap = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                    "%": "frem"}
            if op not in fmap:
                raise CodeGenError(f"operator {op} not valid on floats",
                                   expr.line)
            return self.builder.binop(fmap[op], lhs, rhs)
        signed = lhs.type.signed
        imap = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "sdiv" if signed else "udiv",
            "%": "srem" if signed else "urem",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "ashr" if signed else "lshr",
        }
        if op not in imap:
            raise CodeGenError(f"unsupported operator {op}", expr.line)
        return self.builder.binop(imap[op], lhs, rhs)

    def gen_compare(self, op: str, lhs: ir.Value, rhs: ir.Value,
                    line: int) -> ir.Value:
        if lhs.type.is_pointer() or rhs.type.is_pointer():
            pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                    ">": "ugt", ">=": "uge"}[op]
            return self.builder.icmp(pred, lhs, rhs)
        lhs, rhs = self._unify(lhs, rhs, line)
        if lhs.type.is_float():
            fpred = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
                     ">": "ogt", ">=": "oge"}[op]
            return self.builder.fcmp(fpred, lhs, rhs)
        signed = lhs.type.signed
        base = {"==": "eq", "!=": "ne"}
        if op in base:
            pred = base[op]
        else:
            letter = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[op]
            pred = ("s" if signed else "u") + letter
        return self.builder.icmp(pred, lhs, rhs)

    def gen_assign(self, expr: ast.Assign) -> ir.Value:
        slot = self.gen_lvalue(expr.lhs)
        slot_ty = slot.type
        assert isinstance(slot_ty, ir.PointerType)
        target_ty = slot_ty.pointee
        if expr.op == "=":
            value = self._coerce(self.gen_expr(expr.rhs), target_ty,
                                 expr.line)
            self.builder.store(value, slot)
            return value
        # compound: load-op-store
        binop = expr.op[:-1]
        current = self.builder.load(slot)
        rhs = self.gen_expr(expr.rhs)
        synthetic = ast.Binary(line=expr.line, op=binop)
        value = self._apply_binop(binop, current, rhs, expr.line)
        value = self._coerce(value, target_ty, expr.line)
        self.builder.store(value, slot)
        return value

    def _apply_binop(self, op: str, lhs: ir.Value, rhs: ir.Value,
                     line: int) -> ir.Value:
        if lhs.type.is_pointer() and op in ("+", "-"):
            index = rhs
            if op == "-":
                index = self.builder.binop("sub",
                                           ir.Constant(0, rhs.type), rhs)
            return self.builder.gep(lhs, index)
        lhs2, rhs2 = self._unify(lhs, rhs, line)
        if lhs2.type.is_float():
            fmap = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                    "%": "frem"}
            return self.builder.binop(fmap[op], lhs2, rhs2)
        signed = lhs2.type.signed
        imap = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "sdiv" if signed else "udiv",
            "%": "srem" if signed else "urem",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "ashr" if signed else "lshr",
        }
        return self.builder.binop(imap[op], lhs2, rhs2)

    def gen_lvalue(self, expr: ast.Expr) -> ir.Value:
        """Address of an assignable expression."""
        self.builder.current_loc = _loc(expr)
        if isinstance(expr, ast.Ident):
            binding = self._lookup(expr.name)
            if binding is None:
                raise CodeGenError(f"undeclared identifier {expr.name}",
                                   expr.line)
            if binding.direct:
                raise CodeGenError(
                    f"{expr.name} is an array and cannot be assigned",
                    expr.line)
            return binding.value
        if isinstance(expr, ast.Index):
            base = self.gen_expr(expr.base)
            if not base.type.is_pointer():
                raise CodeGenError("indexing a non-pointer", expr.line)
            index = self.gen_expr(expr.index)
            index = self._as_int(index, expr.line)
            return self.builder.gep(base, index)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self.gen_expr(expr.operand)
        raise CodeGenError(
            f"expression is not assignable ({type(expr).__name__})",
            expr.line)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def gen_call(self, expr: ast.CallExpr) -> ir.Value:
        name = expr.name
        if name == "__syncthreads":
            self.builder.sync()
            return ir.Constant(0, ir.I32)
        if name in _ATOMIC_CALLS:
            pointer = self._pointer_arg(expr.args[0], expr.line)
            if _ATOMIC_CALLS[name] in ("inc", "dec"):
                value = self.gen_expr(expr.args[1]) if len(expr.args) > 1 \
                    else ir.Constant(0xFFFFFFFF, ir.U32)
            else:
                value = self.gen_expr(expr.args[1])
            return self.builder.atomic_rmw(_ATOMIC_CALLS[name], pointer,
                                           value)
        if name == "atomicCAS":
            pointer = self._pointer_arg(expr.args[0], expr.line)
            expected = self.gen_expr(expr.args[1])
            new_value = self.gen_expr(expr.args[2])
            return self.builder.atomic_cas(pointer, expected, new_value)
        if name in ("min", "max", "umin", "umax"):
            a = self.gen_expr(expr.args[0])
            b = self.gen_expr(expr.args[1])
            a, b = self._unify(a, b, expr.line)
            if a.type.is_float():
                cond = self.builder.fcmp(
                    "olt" if name in ("min", "umin") else "ogt", a, b)
            else:
                signed = a.type.signed and not name.startswith("u")
                pred = ("slt" if signed else "ult") \
                    if name.endswith("min") or name == "min" else \
                    ("sgt" if signed else "ugt")
                cond = self.builder.icmp(pred, a, b)
            return self.builder.select(cond, a, b)
        if name in ("abs", "labs"):
            a = self.gen_expr(expr.args[0])
            zero = ir.Constant(0, a.type)
            neg = self.builder.binop("sub", zero, a)
            cond = self.builder.icmp("slt", a, zero)
            return self.builder.select(cond, neg, a)
        if name in _FLOAT_INTRINSICS:
            args = [self.gen_expr(a) for a in expr.args]
            result = self.builder.call(name, args, ir.F32)
            return result
        if name == "assert" or name == "__assert":
            cond = self._as_bool(self.gen_expr(expr.args[0]), expr.line)
            self.builder.call("__assert", [cond], None)
            return ir.Constant(0, ir.I32)
        if name in self.cg.device_fns:
            return self.inline_device_call(expr)
        raise CodeGenError(f"unknown function {name}", expr.line)

    def inline_device_call(self, expr: ast.CallExpr) -> ir.Value:
        """Inline a ``__device__`` function at the call site.

        This performs the paper's inlining pass (§V pass 1) in the front
        end: by the time the static analyzer and the executor see the IR,
        kernels are call-free apart from intrinsics. Recursion is rejected.
        """
        fn_ast = self.cg.device_fns[expr.name]
        if expr.name in self.inline_stack:
            raise CodeGenError(
                f"recursive device function {expr.name} is not supported",
                expr.line)
        if len(expr.args) != len(fn_ast.params):
            raise CodeGenError(
                f"{expr.name} expects {len(fn_ast.params)} arguments",
                expr.line)
        args = [self.gen_expr(a) for a in expr.args]

        outer_scope = self.scope
        outer_ret = self.ret_target
        self.scope = Scope()  # device fn body sees only its own params
        self.inline_stack.append(expr.name)
        try:
            for value, param in zip(args, fn_ast.params):
                ptype = resolve_type(param.type_name, ir.MemSpace.GLOBAL)
                slot = self.builder.alloca(ptype, hint=f"{param.name}.inl")
                self.builder.store(
                    self._coerce(value, ptype, expr.line), slot)
                self.scope.declare(param.name, _Binding(slot, direct=False))
            ret_type = resolve_type(fn_ast.ret_type)
            ret_slot = None
            if not ret_type.is_void():
                ret_slot = self.builder.alloca(ret_type, hint="ret.inl")
                self.builder.store(ir.Constant(0, ret_type), ret_slot)
            cont = self.function.new_block(f"{expr.name}.cont")
            self.ret_target = (ret_slot, cont)
            self.gen_block(fn_ast.body)
            if not self.builder.block.is_terminated():
                self.builder.jump(cont)
            self.builder.position_at(cont)
            if ret_slot is not None:
                return self.builder.load(ret_slot)
            return ir.Constant(0, ir.I32)
        finally:
            self.inline_stack.pop()
            self.scope = outer_scope
            self.ret_target = outer_ret

    def _pointer_arg(self, expr: ast.Expr, line: int) -> ir.Value:
        """Atomics accept ``&a[i]``, ``p + i`` or a bare pointer."""
        value = self.gen_expr(expr)
        if not value.type.is_pointer():
            raise CodeGenError("atomic operand must be a pointer", line)
        return value

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    def _as_bool(self, value: ir.Value, line: int) -> ir.Value:
        if isinstance(value.type, ir.IntType) and value.type.width == 1:
            return value
        if value.type.is_float():
            return self.builder.fcmp("one", value,
                                     ir.Constant(0, value.type))
        if value.type.is_pointer():
            raise CodeGenError("pointer used as condition", line)
        return self.builder.icmp("ne", value, ir.Constant(0, value.type))

    def _as_int(self, value: ir.Value, line: int) -> ir.Value:
        if isinstance(value.type, ir.IntType):
            if value.type.width == 1:
                return self.builder.cast("zext", value, ir.I32)
            return value
        if value.type.is_float():
            return self.builder.cast("fptosi", value, ir.I32)
        raise CodeGenError("expected integer value", line)

    def _unify(self, a: ir.Value, b: ir.Value,
               line: int) -> Tuple[ir.Value, ir.Value]:
        """C usual arithmetic conversions."""
        if a.type == b.type:
            return a, b
        if a.type.is_float() or b.type.is_float():
            fa = a if a.type.is_float() else None
            target = a.type if a.type.is_float() else b.type
            if a.type.is_float() and b.type.is_float():
                target = a.type if a.type.size_bytes() >= b.type.size_bytes() \
                    else b.type
            return (self._coerce(a, target, line),
                    self._coerce(b, target, line))
        if isinstance(a.type, ir.IntType) and isinstance(b.type, ir.IntType):
            target = common_int_type(a.type, b.type)
            return (self._coerce(a, target, line),
                    self._coerce(b, target, line))
        if a.type.is_pointer() and b.type.is_pointer():
            return a, b
        raise CodeGenError(f"cannot unify {a.type!r} and {b.type!r}", line)

    def _coerce(self, value: ir.Value, target: ir.Type, line: int,
                explicit: bool = False) -> ir.Value:
        src = value.type
        if src == target:
            return value
        if isinstance(value, ir.Constant) and isinstance(target, ir.IntType) \
                and isinstance(src, ir.IntType):
            wrapped = value.value & ((1 << target.width) - 1)
            if isinstance(src, ir.IntType) and src.signed and \
                    value.value >> (src.width - 1) and target.width > src.width:
                # sign-extend the literal
                wrapped = (value.value | (~((1 << src.width) - 1))) \
                    & ((1 << target.width) - 1)
            return ir.Constant(wrapped, target)
        if isinstance(src, ir.IntType) and isinstance(target, ir.IntType):
            if src.width == target.width:
                return self.builder.cast("bitcast", value, target)
            if src.width > target.width:
                return self.builder.cast("trunc", value, target)
            kind = "sext" if src.signed else "zext"
            return self.builder.cast(kind, value, target)
        if isinstance(src, ir.IntType) and target.is_float():
            kind = "sitofp" if src.signed else "uitofp"
            return self.builder.cast(kind, value, target)
        if src.is_float() and isinstance(target, ir.IntType):
            kind = "fptosi" if target.signed else "fptoui"
            return self.builder.cast(kind, value, target)
        if src.is_float() and target.is_float():
            kind = "fpext" if target.size_bytes() > src.size_bytes() \
                else "fptrunc"
            return self.builder.cast(kind, value, target)
        if src.is_pointer() and target.is_pointer():
            if explicit:
                space = src.space  # keep the true memory space
                return self.builder.cast(
                    "bitcast", value,
                    ir.PointerType(target.pointee, space))
            return value
        raise CodeGenError(f"cannot convert {src!r} to {target!r}", line)


def compile_source(source: str, name: str = "minicuda") -> ir.Module:
    """Front door: MiniCUDA source text → IR module."""
    unit = parse(source)
    return CodeGen(name).compile(unit)
