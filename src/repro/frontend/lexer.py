"""Tokenizer for MiniCUDA.

Handles // and /* */ comments and object-like ``#define NAME <tokens>``
macros (expanded textually at the token level, which is what the paper's
SDK-style kernels need for things like ``#define NUM 256``). Function-like
macros and conditional compilation are intentionally out of scope — the
bundled kernels are written without them.
"""
from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class LexError(Exception):
    """Tokenisation failure with a source line number."""
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str          # 'ident', 'int', 'float', 'punct', 'keyword', 'eof'
    text: str
    line: int
    col: int = 0       # 1-based column of the first character; 0 = unknown

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


KEYWORDS = frozenset({
    "void", "int", "unsigned", "signed", "char", "short", "long", "float",
    "double", "bool", "if", "else", "for", "while", "do", "break",
    "continue", "return", "const", "volatile", "struct", "sizeof",
    "__global__", "__device__", "__shared__", "__constant__", "__host__",
    "uint", "ushort", "uchar", "size_t",
})

# longest first so '>>=' wins over '>>' and '>'
PUNCTUATION = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?|\d+\.?[fF])
  | (?P<int>0[xX][0-9a-fA-F]+[uUlL]*|\d+[uUlL]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>""" + "|".join(re.escape(p) for p in PUNCTUATION) + r""")
    """,
    re.VERBOSE,
)


def _strip_comments(source: str) -> str:
    """Remove comments while preserving line numbers."""
    out: List[str] = []
    i, n = 0, len(source)
    while i < n:
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
        elif source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise LexError("unterminated block comment",
                               source.count("\n", 0, i) + 1)
            out.append("\n" * source.count("\n", i, j + 2))
            i = j + 2
        else:
            out.append(source[i])
            i += 1
    return "".join(out)


def _tokenize_line(text: str, line: int) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch in " \t\r":
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise LexError(f"unexpected character {ch!r}", line)
        col = m.start() + 1
        pos = m.end()
        if m.lastgroup == "float":
            tokens.append(Token("float", m.group(), line, col))
        elif m.lastgroup == "int":
            tokens.append(Token("int", m.group(), line, col))
        elif m.lastgroup == "ident":
            kind = "keyword" if m.group() in KEYWORDS else "ident"
            tokens.append(Token(kind, m.group(), line, col))
        else:
            tokens.append(Token("punct", m.group(), line, col))
    return tokens


def tokenize(source: str) -> List[Token]:
    """Lex a MiniCUDA source string into tokens (with macro expansion)."""
    source = _strip_comments(source)
    macros: Dict[str, List[Token]] = {}
    tokens: List[Token] = []

    for lineno, raw in enumerate(source.split("\n"), start=1):
        stripped = raw.strip()
        if stripped.startswith("#"):
            directive = stripped[1:].strip()
            if directive.startswith("define"):
                body = directive[len("define"):].strip()
                m = re.match(r"([A-Za-z_][A-Za-z0-9_]*)(\(?)\s*(.*)", body)
                if m is None:
                    raise LexError("malformed #define", lineno)
                name = m.group(1)
                # C rule: '(' immediately after the name (no whitespace)
                # makes it function-like; '#define N (expr)' is object-like
                if m.group(2) == "(":
                    raise LexError(
                        "function-like macros are not supported; "
                        "inline the definition", lineno)
                replacement = m.group(3)
                macros[name] = _tokenize_line(replacement, lineno)
            elif directive.startswith("include"):
                continue  # headers are irrelevant: builtins are built in
            elif directive == "" or directive.startswith("pragma"):
                continue
            else:
                raise LexError(f"unsupported directive #{directive}", lineno)
            continue
        line_tokens = _tokenize_line(raw, lineno)
        # macro expansion (single level, sufficient for constant defines)
        for tok in line_tokens:
            if tok.kind == "ident" and tok.text in macros:
                # expanded tokens inherit the use site's position
                for m_tok in macros[tok.text]:
                    tokens.append(Token(m_tok.kind, m_tok.text, lineno,
                                        tok.col))
            else:
                tokens.append(tok)

    tokens.append(Token("eof", "", source.count("\n") + 1, 1))
    return tokens
