"""Recursive-descent parser for MiniCUDA.

Grammar: a C subset — function definitions with CUDA qualifiers,
declarations, the usual statements, and expressions with full C operator
precedence. The CUDA built-ins (``threadIdx.x`` etc.) are parsed into
:class:`BuiltinRef` nodes directly.
"""
from __future__ import annotations

import struct
from typing import List, Optional

from . import ast
from .lexer import Token, tokenize


class ParseError(Exception):
    """Syntax error with the offending token and line."""
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token


_BUILTIN_BASES = {"threadIdx", "blockIdx", "blockDim", "gridDim"}
_TYPE_KEYWORDS = {"void", "int", "unsigned", "signed", "char", "short",
                  "long", "float", "double", "bool", "uint", "ushort",
                  "uchar", "size_t"}

# binary operator precedence (C): higher binds tighter
_BINARY_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}


class Parser:
    """Recursive-descent parser with C operator precedence."""
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> Optional[Token]:
        if self.at(text):
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        if not self.at(text):
            raise ParseError(f"expected {text!r}", self.peek())
        return self.advance()

    # -- top level ---------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1, col=1)
        while self.peek().kind != "eof":
            if self.at("__shared__"):
                unit.shared_decls.append(self.parse_shared_decl())
            else:
                unit.functions.append(self.parse_function())
        return unit

    def parse_shared_decl(self) -> ast.SharedDecl:
        kw = self.expect("__shared__")
        type_name = self.parse_type_name()
        name = self.expect_ident()
        while self.at("["):
            self.advance()
            type_name.array_dims.append(self.parse_expr())
            self.expect("]")
        self.expect(";")
        return ast.SharedDecl(line=kw.line, col=kw.col, name=name,
                              type_name=type_name)

    def parse_function(self) -> ast.FunctionDef:
        start = self.peek()
        qualifier = ""
        while self.peek().text in ("__global__", "__device__", "__host__"):
            qual = self.advance().text
            if qual in ("__global__", "__device__"):
                qualifier = qual
        ret_type = self.parse_type_name()
        name = self.expect_ident()
        self.expect("(")
        params: List[ast.Param] = []
        if not self.at(")"):
            while True:
                p_start = self.peek()
                p_type = self.parse_type_name()
                p_name = self.expect_ident()
                while self.at("["):      # array param decays to pointer
                    self.advance()
                    if not self.at("]"):
                        self.parse_expr()
                    self.expect("]")
                    p_type.pointer_depth += 1
                params.append(ast.Param(line=p_start.line, col=p_start.col,
                                        name=p_name, type_name=p_type))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FunctionDef(line=start.line, col=start.col, name=name,
                               qualifier=qualifier, ret_type=ret_type,
                               params=params, body=body)

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != "ident":
            raise ParseError("expected identifier", tok)
        return self.advance().text

    # -- types --------------------------------------------------------------

    def looks_like_type(self, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.kind == "keyword" and tok.text in (
            _TYPE_KEYWORDS | {"const", "volatile", "__shared__"})

    def parse_type_name(self) -> ast.TypeName:
        start = self.peek()
        signed = True
        base: Optional[str] = None
        saw_specifier = False
        while True:
            tok = self.peek()
            if tok.text in ("const", "volatile"):
                self.advance()
                continue
            if tok.text == "unsigned":
                signed = False
                saw_specifier = True
                self.advance()
                continue
            if tok.text == "signed":
                saw_specifier = True
                self.advance()
                continue
            if tok.text in ("void", "int", "char", "short", "long", "float",
                            "double", "bool"):
                base = tok.text
                saw_specifier = True
                self.advance()
                # 'long long', 'unsigned long long'
                while self.peek().text in ("int", "long"):
                    if self.peek().text == "long":
                        base = "long"
                    self.advance()
                continue
            if tok.text in ("uint", "size_t"):
                base, signed = "int", False
                saw_specifier = True
                self.advance()
                continue
            if tok.text == "ushort":
                base, signed = "short", False
                saw_specifier = True
                self.advance()
                continue
            if tok.text == "uchar":
                base, signed = "char", False
                saw_specifier = True
                self.advance()
                continue
            break
        if not saw_specifier:
            raise ParseError("expected type", self.peek())
        if base is None:
            base = "int"  # bare 'unsigned'
        depth = 0
        while self.at("*"):
            self.advance()
            while self.peek().text in ("const", "volatile"):
                self.advance()
            depth += 1
        return ast.TypeName(line=start.line, col=start.col, base=base,
                            signed=signed, pointer_depth=depth)

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        brace = self.expect("{")
        block = ast.Block(line=brace.line, col=brace.col)
        while not self.at("}"):
            block.stmts.append(self.parse_statement())
        self.expect("}")
        return block

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "while":
            return self.parse_while()
        if tok.text == "do":
            return self.parse_do_while()
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return ast.BreakStmt(line=tok.line, col=tok.col)
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return ast.ContinueStmt(line=tok.line, col=tok.col)
        if tok.text == "return":
            self.advance()
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return ast.ReturnStmt(line=tok.line, col=tok.col, value=value)
        if tok.text == ";":
            self.advance()
            return ast.Block(line=tok.line, col=tok.col)
        if tok.text == "__syncthreads":
            self.advance()
            self.expect("(")
            self.expect(")")
            self.expect(";")
            return ast.SyncStmt(line=tok.line, col=tok.col)
        if tok.text == "__shared__" or self.looks_like_type():
            return self.parse_declaration()
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(line=tok.line, col=tok.col, expr=expr)

    def parse_declaration(self) -> ast.DeclStmt:
        start = self.peek()
        shared = bool(self.accept("__shared__"))
        base_type = self.parse_type_name()
        decl = ast.DeclStmt(line=start.line, col=start.col,
                            type_name=base_type, shared=shared)
        while True:
            # per-declarator pointer depth: 'int *p, x;'
            extra_depth = 0
            while self.at("*"):
                self.advance()
                extra_depth += 1
            name = self.expect_ident()
            this_type = ast.TypeName(
                line=base_type.line, col=base_type.col, base=base_type.base,
                signed=base_type.signed,
                pointer_depth=base_type.pointer_depth + extra_depth)
            while self.at("["):
                self.advance()
                this_type.array_dims.append(self.parse_expr())
                self.expect("]")
            init = None
            if self.accept("="):
                init = self.parse_assignment()
            decl.declarators.append((name, this_type, init))
            if not self.accept(","):
                break
        self.expect(";")
        return decl

    def parse_if(self) -> ast.IfStmt:
        kw = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.as_block(self.parse_statement())
        else_body = None
        if self.accept("else"):
            else_body = self.as_block(self.parse_statement())
        return ast.IfStmt(line=kw.line, col=kw.col, cond=cond,
                          then_body=then_body, else_body=else_body)

    def parse_for(self) -> ast.ForStmt:
        kw = self.expect("for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.at(";"):
            if self.looks_like_type():
                init = self.parse_declaration()  # consumes ';'
            else:
                expr = self.parse_expr()
                self.expect(";")
                init = ast.ExprStmt(line=expr.line, col=expr.col, expr=expr)
        else:
            self.expect(";")
        cond = None if self.at(";") else self.parse_expr()
        self.expect(";")
        step = None if self.at(")") else self.parse_expr()
        self.expect(")")
        body = self.as_block(self.parse_statement())
        return ast.ForStmt(line=kw.line, col=kw.col, init=init, cond=cond,
                           step=step, body=body)

    def parse_while(self) -> ast.WhileStmt:
        kw = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.as_block(self.parse_statement())
        return ast.WhileStmt(line=kw.line, col=kw.col, cond=cond, body=body)

    def parse_do_while(self) -> ast.WhileStmt:
        kw = self.expect("do")
        body = self.as_block(self.parse_statement())
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.WhileStmt(line=kw.line, col=kw.col, cond=cond, body=body,
                             is_do_while=True)

    @staticmethod
    def as_block(stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(line=stmt.line, col=stmt.col, stmts=[stmt])

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept(","):
            rhs = self.parse_assignment()
            expr = ast.Binary(line=rhs.line, col=rhs.col, op=",", lhs=expr,
                              rhs=rhs)
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self.advance()
            rhs = self.parse_assignment()  # right-assoc
            return ast.Assign(line=tok.line, col=tok.col, op=tok.text, lhs=lhs, rhs=rhs)
        return lhs

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            then = self.parse_assignment()
            self.expect(":")
            otherwise = self.parse_assignment()
            return ast.Ternary(line=cond.line, col=cond.col, cond=cond,
                               then=then, otherwise=otherwise)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _BINARY_PREC.get(tok.text) if tok.kind == "punct" else None
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.Binary(line=tok.line, col=tok.col, op=tok.text, lhs=lhs, rhs=rhs)

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.text in ("-", "!", "~", "*", "&", "+"):
            self.advance()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(line=tok.line, col=tok.col, op=tok.text, operand=operand)
        if tok.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=tok.line, col=tok.col, op=tok.text + "pre",
                             operand=operand)
        # cast: '(' type ')' unary
        if tok.text == "(" and self.looks_like_type(1):
            self.advance()
            to_type = self.parse_type_name()
            self.expect(")")
            operand = self.parse_unary()
            return ast.CastExpr(line=tok.line, col=tok.col, to_type=to_type,
                                operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.text == "[":
                self.advance()
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(line=tok.line, col=tok.col, base=expr, index=index)
            elif tok.text in ("++", "--"):
                self.advance()
                expr = ast.PostIncDec(line=tok.line, col=tok.col, op=tok.text,
                                      operand=expr)
            elif tok.text == ".":
                # only CUDA builtins have members in MiniCUDA
                if not isinstance(expr, ast.Ident) \
                        or expr.name not in _BUILTIN_BASES:
                    raise ParseError(
                        "member access is only supported on CUDA builtins "
                        "(threadIdx/blockIdx/blockDim/gridDim)", tok)
                self.advance()
                axis = self.expect_ident()
                if axis not in ("x", "y", "z"):
                    raise ParseError(f"unknown axis .{axis}", tok)
                expr = ast.BuiltinRef(line=tok.line, col=tok.col, base=expr.name,
                                      axis=axis)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            text = tok.text.rstrip("uUlL")
            unsigned = any(c in "uU" for c in tok.text)
            value = int(text, 0)
            return ast.IntLit(line=tok.line, col=tok.col, value=value, unsigned=unsigned)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(line=tok.line, col=tok.col,
                                value=float(tok.text.rstrip("fF")))
        if tok.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind == "ident":
            self.advance()
            if self.at("(") :
                self.advance()
                args: List[ast.Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.CallExpr(line=tok.line, col=tok.col, name=tok.text, args=args)
            if tok.text == "warpSize":
                return ast.BuiltinRef(line=tok.line, col=tok.col, base="warpSize",
                                      axis="x")
            return ast.Ident(line=tok.line, col=tok.col, name=tok.text)
        raise ParseError("expected expression", tok)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniCUDA source text into an AST."""
    return Parser(tokenize(source)).parse_translation_unit()
